// Package server runs a SIM database as a network service: the shared
// SIM kernel of the paper's Figure 1, reachable by IQF-style front ends
// (cmd/simdb -connect), the benchmark harness, and any client speaking
// internal/wire. One server wraps one *sim.Database; each TCP connection
// is a session issuing one request at a time.
//
// The server bounds concurrent connections, applies read/write and
// per-request deadlines, isolates per-connection panics, keeps an atomic
// counter set surfaced through the STATS frame, and drains in-flight
// requests on graceful shutdown.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sim"
	"sim/internal/obs"
	"sim/internal/repl"
	"sim/internal/wire"
)

// Config tunes a Server. The zero value is usable: 64 connections, no
// idle or request deadlines, the wire package's default frame limit.
type Config struct {
	// MaxConns bounds concurrently open connections (default 64).
	// Connections beyond it receive a CodeBusy error frame and are closed.
	MaxConns int
	// MaxInflight bounds requests executing at once across all sessions.
	// A request arriving while the bound is saturated is answered
	// immediately with a CodeOverloaded error frame — fast-fail, bounding
	// queueing latency — and the session stays open. Zero means no bound.
	MaxInflight int
	// ReadTimeout is the per-frame read deadline. A session idle past it
	// is closed; clients reconnect transparently (see package client).
	ReadTimeout time.Duration
	// WriteTimeout is the deadline for writing one response frame.
	WriteTimeout time.Duration
	// RequestTimeout bounds the execution of one Query/Exec request via
	// context cancellation inside the executor. Zero means unbounded.
	RequestTimeout time.Duration
	// MaxFrame bounds accepted request frames (default wire.DefaultMaxFrame).
	MaxFrame int
	// Logger receives structured connection-level diagnostics: session
	// open/close, handshake and request errors, contained panics, slow
	// requests. Nil discards them.
	Logger *slog.Logger
	// SlowRequest is the duration above which a served request is logged
	// at Warn level. Zero disables slow-request logging.
	SlowRequest time.Duration
	// Registry, when set, receives the server's metrics: lifetime counters
	// (connections, requests, bytes, errors) and the per-request latency
	// histogram sim_server_request_seconds.
	Registry *obs.Registry
	// ReadOnly refuses every mutating request (Exec, Begin/Commit/Rollback,
	// Checkpoint) with CodeReadOnly. Set on replicas, whose database is
	// owned by the replication applier. The role is runtime state: a
	// Promote clears it, a fencing event re-imposes it (as CodeFenced).
	ReadOnly bool
	// Publisher, when set, serves replication streams: a ReplHello frame
	// turns the connection into a log-shipping subscription fed from it.
	Publisher *repl.Publisher
	// ReplStatus, when set, answers the ReplStatus request (primary and
	// replica alike). Nil answers with role "none". A fencing event
	// overrides the reported role with "fenced"; a Promote replaces the
	// source with the new publisher's status.
	ReplStatus func() wire.ReplStatus
	// FencedBy starts the server fenced by the given epoch: a higher term
	// was witnessed durably (ClaimEpoch found MaxSeen > Epoch), so writes
	// are refused with CodeFenced from the first request.
	FencedBy uint64
	// Promote, when set, turns this replica into a primary when a TPromote
	// frame arrives: it must drain and seal the follower, persist the
	// advanced epoch, and return the publisher the node now serves
	// replication from. It must be idempotent (a retried TPromote returns
	// the same publisher). The server flips its own dispatch state.
	Promote func() (*repl.Publisher, error)
	// Retarget, when set, re-points this replica's replication stream at a
	// new primary address when a TRetarget frame arrives.
	Retarget func(addr string) error
	// OnFence is called (outside the server's locks) whenever the server
	// is fenced by a strictly higher epoch than before: a follower claimed
	// it on hello, or a Retarget frame delivered it. newPrimary may be
	// empty. Implementations persist the witnessed epoch and, when given
	// an address, rejoin the new primary as a follower.
	OnFence func(epoch uint64, newPrimary string)
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// handshakeTimeout bounds the initial Hello exchange.
const handshakeTimeout = 10 * time.Second

// Server serves one database over TCP.
type Server struct {
	db     *sim.Database
	cfg    Config
	log    *slog.Logger
	hist   *obs.Histogram  // sim_server_request_seconds (nil without a registry)
	flight *obs.FlightRing // overload/panic/ship events (nil ring is a no-op)

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	quit     chan struct{}
	quitOnce sync.Once

	// Replication role, mutable at runtime: promotion turns a read-only
	// replica into a writable primary, fencing turns a primary read-only.
	roleMu   sync.Mutex
	pub      *repl.Publisher
	statusFn func() wire.ReplStatus
	readOnly bool
	fencedBy uint64 // higher epoch this node was fenced by; 0 = not fenced

	inflight sync.WaitGroup // requests being executed
	handlers sync.WaitGroup // connection goroutines
	slots    chan struct{}  // in-flight bound (nil when MaxInflight == 0)

	connections atomic.Uint64
	active      atomic.Int64
	requests    atomic.Uint64
	bytesIn     atomic.Uint64
	bytesOut    atomic.Uint64
	errors      atomic.Uint64
	fastFails   atomic.Uint64
}

// New returns an unstarted server over db.
func New(db *sim.Database, cfg Config) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		db:       db,
		cfg:      cfg,
		log:      log,
		conns:    make(map[net.Conn]struct{}),
		quit:     make(chan struct{}),
		pub:      cfg.Publisher,
		statusFn: cfg.ReplStatus,
		readOnly: cfg.ReadOnly,
		fencedBy: cfg.FencedBy,
	}
	if cfg.MaxInflight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInflight)
	}
	s.flight = cfg.Registry.Flight().Component("server")
	if r := cfg.Registry; r != nil {
		s.hist = r.Histogram("sim_server_request_seconds", "Per-request service latency (dispatch through execution).")
		r.CounterFunc("sim_server_connections_total", "Connections accepted.",
			func() float64 { return float64(s.connections.Load()) })
		r.GaugeFunc("sim_server_active_connections", "Connections currently open.",
			func() float64 { return float64(max(s.active.Load(), 0)) })
		r.CounterFunc("sim_server_requests_total", "Request frames served.",
			func() float64 { return float64(s.requests.Load()) })
		r.CounterFunc("sim_server_bytes_in_total", "Frame bytes read from clients.",
			func() float64 { return float64(s.bytesIn.Load()) })
		r.CounterFunc("sim_server_bytes_out_total", "Frame bytes written to clients.",
			func() float64 { return float64(s.bytesOut.Load()) })
		r.CounterFunc("sim_server_errors_total", "Error frames sent plus aborted connections.",
			func() float64 { return float64(s.errors.Load()) })
		r.CounterFunc("sim_server_fastfail_total", "Requests refused with CodeOverloaded because MaxInflight was saturated.",
			func() float64 { return float64(s.fastFails.Load()) })
	}
	return s
}

// ListenAndServe listens on addr ("host:port") and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Addr returns the listener's address once Serve has been called (handy
// with ":0" listeners in tests and benchmarks).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Serve accepts connections on lis until Shutdown closes it. It always
// returns a non-nil error; after a clean shutdown, ErrServerClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	select {
	case <-s.quit:
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	default:
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return ErrServerClosed
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if int(s.active.Load()) >= s.cfg.MaxConns {
			s.errors.Add(1)
			s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeBusy,
				fmt.Sprintf("server at its %d-connection limit", s.cfg.MaxConns)))
			conn.Close()
			continue
		}
		s.connections.Add(1)
		s.active.Add(1)
		s.track(conn)
		s.handlers.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// session is the per-connection state: at most one open transaction,
// owned by the connection and rolled back when the session ends for any
// reason (client close, idle timeout, server drain, panic).
type session struct {
	tx *sim.Tx
}

// handle runs one session. A panic anywhere in the session — including
// inside the executor — is contained here: the connection dies, the
// server does not.
func (s *Server) handle(conn net.Conn) {
	defer s.handlers.Done()
	start := time.Now()
	sess := &session{}
	defer func() {
		if p := recover(); p != nil {
			s.errors.Add(1)
			s.flight.Record(obs.FlightEvent{Comp: "server", Kind: "panic", Note: fmt.Sprint(p)})
			s.log.Error("panic in session", "remote", conn.RemoteAddr().String(), "panic", p)
			// Auto-dump: the events leading up to a panic are exactly what
			// the flight recorder retains; surface them with the incident.
			s.log.Error("flight recorder dump after panic",
				"dump", s.db.FlightRecorder().Dump())
		}
		if sess.tx != nil {
			// The session died with a transaction open; its effects must
			// not survive the connection.
			if err := sess.tx.Rollback(); err != nil {
				s.log.Warn("rollback of orphaned transaction failed",
					"remote", conn.RemoteAddr().String(), "err", err)
			} else {
				s.log.Debug("rolled back orphaned transaction",
					"remote", conn.RemoteAddr().String())
			}
			sess.tx = nil
		}
		s.untrack(conn)
		conn.Close()
		s.active.Add(-1)
		s.log.Debug("session closed", "remote", conn.RemoteAddr().String(),
			"duration", time.Since(start))
	}()

	if err := s.handshake(conn); err != nil {
		s.errors.Add(1)
		s.log.Warn("handshake failed", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	s.log.Debug("session open", "remote", conn.RemoteAddr().String())

	var rbuf []byte
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		if s.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		t, payload, err := s.readFrame(conn, &rbuf)
		if err != nil {
			// EOF and idle timeouts are the normal end of a session;
			// anything decodable as a protocol violation gets a last
			// error frame so the client can tell what happened.
			if errors.Is(err, wire.ErrFrameTooLarge) || strings.HasPrefix(err.Error(), "wire:") {
				s.errors.Add(1)
				s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeProtocol, err.Error()))
			}
			return
		}
		if t == wire.TReplHello {
			// The connection becomes a replication stream and never
			// returns to request/response.
			s.serveReplication(conn, payload)
			return
		}
		if !s.serveRequest(conn, sess, t, payload) {
			return
		}
	}
}

// handshake performs the Hello exchange.
func (s *Server) handshake(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	t, payload, err := s.readFrame(conn, nil)
	if err != nil {
		return err
	}
	if t != wire.THello {
		s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeProtocol, "expected Hello"))
		return fmt.Errorf("first frame %v, want Hello", t)
	}
	v, err := wire.DecodeHello(payload)
	if err != nil {
		s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeProtocol, err.Error()))
		return err
	}
	if v < wire.MinVersion || v > wire.Version {
		msg := fmt.Sprintf("protocol version %d not supported (server speaks %d-%d)",
			v, wire.MinVersion, wire.Version)
		s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeProtocol, msg))
		return errors.New(msg)
	}
	// Echo the client's version: an older client checks for its own.
	return s.writeFrame(conn, wire.THello, append([]byte(wire.Magic), v))
}

// serveRequest executes one request and writes its response, reporting
// whether the session should continue.
func (s *Server) serveRequest(conn net.Conn, sess *session, t wire.Type, payload []byte) bool {
	s.requests.Add(1)
	// Request frames carry a client-minted request ID prefix; peel it off
	// so the ID can ride the request's context through the engine.
	var reqID uint64
	switch t {
	case wire.TQuery, wire.TExec, wire.TQueryTrace, wire.TBegin, wire.TCommit, wire.TRollback, wire.TTraceCommit:
		var err error
		if reqID, payload, err = wire.DecodeRequest(payload); err != nil {
			s.errors.Add(1)
			werr := s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeProtocol, err.Error()))
			return werr == nil
		}
	}
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		default:
			// Saturated: fail fast instead of queueing unboundedly. The
			// client sees a retryable CodeOverloaded and backs off.
			s.fastFails.Add(1)
			s.errors.Add(1)
			s.flight.Record(obs.FlightEvent{Comp: "server", Kind: "overload", ID: reqID,
				N: int64(s.cfg.MaxInflight), Note: t.String()})
			err := s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeOverloaded,
				fmt.Sprintf("server at its %d-request in-flight limit", s.cfg.MaxInflight)))
			return err == nil
		}
	}
	s.inflight.Add(1)
	start := time.Now()
	rt, resp := func() (wire.Type, []byte) {
		defer s.inflight.Done()
		return s.dispatch(sess, t, payload, reqID)
	}()
	d := time.Since(start)
	if s.hist != nil {
		s.hist.Observe(d)
	}
	if rt == wire.TError {
		s.errors.Add(1)
		s.log.Info("request failed", "remote", conn.RemoteAddr().String(),
			"type", t.String(), "duration", d)
	}
	if s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest {
		s.log.Warn("slow request", "remote", conn.RemoteAddr().String(),
			"type", t.String(), "duration", d, "request", fmt.Sprintf("%016x", reqID))
	}
	if err := s.writeFrame(conn, rt, resp); err != nil {
		s.log.Warn("response write failed", "remote", conn.RemoteAddr().String(), "err", err)
		return false
	}
	return true
}

// dispatch executes one request frame against the database. Query and
// Exec route through the session's transaction when one is open, so a
// connection's statements between TBegin and TCommit commit or roll back
// as a unit.
func (s *Server) dispatch(sess *session, t wire.Type, payload []byte, reqID uint64) (wire.Type, []byte) {
	ctx := obs.WithRequestID(context.Background(), reqID)
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	switch t {
	case wire.TExec, wire.TBegin, wire.TCommit, wire.TRollback, wire.TTraceCommit, wire.TCheckpoint:
		// Read-only transactions are pure snapshot readers: a replica (or
		// a fenced ex-primary) serves their Begin/Commit/Rollback like any
		// read, so DialMulti can route them away from the primary.
		if t == wire.TBegin && len(payload) == 1 && payload[0]&wire.BeginReadOnly != 0 {
			break
		}
		if (t == wire.TCommit || t == wire.TRollback) && sess.tx != nil && sess.tx.ReadOnly() {
			break
		}
		readOnly, fencedBy := s.role()
		if fencedBy != 0 {
			return wire.TError, wire.EncodeError(wire.CodeFenced,
				fmt.Sprintf("fenced by epoch %d; a newer primary owns this database", fencedBy))
		}
		if readOnly {
			return wire.TError, wire.EncodeError(wire.CodeReadOnly,
				"replica is read-only; send writes to the primary")
		}
	}
	switch t {
	case wire.TPing:
		return wire.TPong, nil
	case wire.TBegin:
		if sess.tx != nil {
			return wire.TError, wire.EncodeError(wire.CodeTxState, "a transaction is already open on this connection")
		}
		// serveRequest peeled the request ID; what remains is the optional
		// version-4 flag byte.
		var opts []sim.TxOption
		switch {
		case len(payload) == 0:
		case len(payload) == 1 && payload[0]&^wire.BeginReadOnly == 0:
			if payload[0]&wire.BeginReadOnly != 0 {
				opts = append(opts, sim.ReadOnly())
			}
		default:
			return wire.TError, wire.EncodeError(wire.CodeProtocol, "bad begin flags")
		}
		tx, err := s.db.Begin(ctx, opts...)
		if err != nil {
			return wire.TError, encodeErr(ctx, err)
		}
		sess.tx = tx
		return wire.TOK, nil
	case wire.TCommit:
		if sess.tx == nil {
			return wire.TError, wire.EncodeError(wire.CodeTxState, "no transaction is open on this connection")
		}
		err := sess.tx.Commit()
		sess.tx = nil
		if err != nil {
			return wire.TError, encodeErr(ctx, err)
		}
		return wire.TOK, nil
	case wire.TRollback:
		if sess.tx == nil {
			return wire.TError, wire.EncodeError(wire.CodeTxState, "no transaction is open on this connection")
		}
		err := sess.tx.Rollback()
		sess.tx = nil
		if err != nil {
			return wire.TError, encodeErr(ctx, err)
		}
		return wire.TOK, nil
	case wire.TQuery:
		var r *sim.Result
		var err error
		if sess.tx != nil {
			r, err = sess.tx.Query(ctx, string(payload))
		} else {
			r, err = s.db.QueryCtx(ctx, string(payload))
		}
		if err != nil {
			return wire.TError, encodeErr(ctx, err)
		}
		return wire.TResult, wire.EncodeResult(r)
	case wire.TQueryTrace:
		r, tr, err := s.db.QueryTraceCtx(ctx, string(payload))
		if err != nil {
			return wire.TError, encodeErr(ctx, err)
		}
		return wire.TResultTrace, wire.EncodeResultTrace(r, wire.FromQueryTrace(tr))
	case wire.TExec:
		var n int
		var err error
		if sess.tx != nil {
			n, err = sess.tx.Exec(ctx, string(payload))
		} else {
			n, err = s.db.ExecCtx(ctx, string(payload))
		}
		if err != nil {
			return wire.TError, encodeErr(ctx, err)
		}
		return wire.TExecOK, wire.EncodeCount(n)
	case wire.TExplain:
		text, err := s.db.ExplainCtx(ctx, string(payload))
		if err != nil {
			return wire.TError, encodeErr(ctx, err)
		}
		return wire.TExplainOK, []byte(text)
	case wire.TCheckpoint:
		if sess.tx != nil {
			// The checkpoint would wait on the write latch this session's
			// own transaction may hold — refuse instead of deadlocking.
			return wire.TError, wire.EncodeError(wire.CodeTxState, "Checkpoint inside a transaction")
		}
		if err := s.db.Checkpoint(); err != nil {
			return wire.TError, encodeErr(ctx, err)
		}
		return wire.TOK, nil
	case wire.TTraceCommit:
		if sess.tx == nil {
			return wire.TError, wire.EncodeError(wire.CodeTxState, "no transaction is open on this connection")
		}
		ct, err := sess.tx.CommitTraced(ctx)
		sess.tx = nil
		if err != nil {
			return wire.TError, encodeErr(ctx, err)
		}
		return wire.TCommitTraced, wire.EncodeCommitInfo(wire.FromCommitTrace(ct))
	case wire.TIntrospect:
		if len(payload) != 1 {
			return wire.TError, wire.EncodeError(wire.CodeProtocol, "Introspect wants a 1-byte kind")
		}
		switch payload[0] {
		case wire.IntrospectFlight:
			return wire.TIntrospectOK, []byte(s.db.FlightRecorder().Dump())
		case wire.IntrospectHot:
			return wire.TIntrospectOK, []byte(s.db.HotReport())
		default:
			return wire.TError, wire.EncodeError(wire.CodeProtocol,
				fmt.Sprintf("unknown introspection kind %d", payload[0]))
		}
	case wire.TStats:
		return wire.TStatsOK, wire.EncodeServerStats(s.Stats())
	case wire.TReplStatus:
		return wire.TReplStatusOK, wire.EncodeReplStatus(s.replStatus())
	case wire.TPromote:
		return s.handlePromote()
	case wire.TRetarget:
		return s.handleRetarget(payload)
	default:
		return wire.TError, wire.EncodeError(wire.CodeProtocol, fmt.Sprintf("unexpected frame %v", t))
	}
}

// encodeErr classifies a database error into a wire error frame.
func encodeErr(ctx context.Context, err error) []byte {
	code := wire.CodeExec
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) || ctx.Err() != nil:
		code = wire.CodeTimeout
	case errors.Is(err, sim.ErrConflict):
		code = wire.CodeConflict
	case errors.Is(err, sim.ErrReadOnlyTx):
		code = wire.CodeReadOnly
	case strings.HasPrefix(err.Error(), "parse error") || strings.HasPrefix(err.Error(), "lex error"):
		code = wire.CodeParse
	case strings.Contains(err.Error(), "unknown class") ||
		strings.Contains(err.Error(), "unknown perspective class") ||
		strings.Contains(err.Error(), "has no attribute"):
		code = wire.CodeSemantic
	}
	return wire.EncodeError(code, err.Error())
}

// readFrame reads one request frame. buf, when non-nil, is the
// connection's recycled payload buffer: requests are handled to
// completion before the next read (and every dispatch arm copies what it
// keeps), so one buffer per connection serves every frame without
// allocating.
func (s *Server) readFrame(conn net.Conn, buf *[]byte) (wire.Type, []byte, error) {
	var b []byte
	if buf != nil {
		b = *buf
	}
	t, payload, err := wire.ReadFrameBuf(conn, s.cfg.MaxFrame, b)
	if err == nil {
		s.bytesIn.Add(uint64(5 + len(payload)))
		if buf != nil && cap(payload) > cap(b) {
			*buf = payload[:cap(payload)]
		}
	}
	return t, payload, err
}

func (s *Server) writeFrame(conn net.Conn, t wire.Type, payload []byte) error {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	err := wire.WriteFrame(conn, t, payload)
	if err == nil {
		s.bytesOut.Add(uint64(5 + len(payload)))
	}
	return err
}

// Stats returns the server's lifetime counters.
func (s *Server) Stats() wire.ServerStats {
	return wire.ServerStats{
		Connections: s.connections.Load(),
		Active:      uint64(max(s.active.Load(), 0)),
		Requests:    s.requests.Load(),
		BytesIn:     s.bytesIn.Load(),
		BytesOut:    s.bytesOut.Load(),
		Errors:      s.errors.Load(),
	}
}

// Shutdown gracefully stops the server: it stops accepting, lets every
// in-flight request finish and flush its response (or until ctx expires),
// then closes all connections. Sessions between requests are simply
// closed — the client's reconnect logic treats that as an idle close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.quitOnce.Do(func() { close(s.quit) })
	s.mu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Give each handler a beat to write the response of the request that
	// just drained, then cut the remaining (idle or stuck) connections.
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(time.Second):
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-finished
	}
	return err
}

// Close is Shutdown with no grace period.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
