package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"sim"
	"sim/client"
	"sim/internal/server"
	"sim/internal/university"
	"sim/internal/wire"
)

// testDB builds an in-memory university database with a handful of rows.
func testDB(t *testing.T) *sim.Database {
	t.Helper()
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.DefineSchema(university.DDL); err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		`Insert department (dept-nbr := 100, name := "Math").`,
		`Insert instructor (name := "Turing, Alan", soc-sec-no := 100000001,
		   employee-nbr := 1001, salary := 90000,
		   assigned-department := department with (dept-nbr = 100)).`,
	}
	for i := 0; i < 20; i++ {
		adv := ""
		if i < 10 { // the schema caps advisees at 10
			adv = `advisor := instructor with (employee-nbr = 1001),`
		}
		stmts = append(stmts, fmt.Sprintf(`Insert student (name := "Student %02d",
		  soc-sec-no := %d, student-nbr := %d, %s
		  major-department := department with (dept-nbr = 100)).`,
			i, 200000000+i, 1001+i, adv))
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

// startServer serves db on a loopback listener and returns its address.
func startServer(t *testing.T, db *sim.Database, cfg server.Config) (*server.Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return srv, lis.Addr().String()
}

// dialRaw opens a TCP connection and completes the wire handshake, giving
// tests byte-level control over what they send next.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(nc, wire.THello, wire.EncodeHello()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(nc, 0); err != nil || typ != wire.THello {
		t.Fatalf("handshake response: type %v err %v", typ, err)
	}
	return nc
}

func TestRoundTrips(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Remote results must be byte-identical to in-process ones, in both
	// the tabular and STRUCTURE renderings.
	queries := []string{
		`From student Retrieve name, name of advisor Where student-nbr > 1005.`,
		`From department Retrieve Structure name, name of instructors-employed.`,
		`From student Retrieve name Where name = "nobody".`,
	}
	for _, q := range queries {
		local, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		remote, err := c.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if remote.Format() != local.Format() {
			t.Errorf("%s:\nremote %q\nlocal  %q", q, remote.Format(), local.Format())
		}
		if remote.FormatStructured() != local.FormatStructured() {
			t.Errorf("%s: structured rendering diverged", q)
		}
		if remote.Stats != local.Stats {
			t.Errorf("%s: stats %+v vs %+v", q, remote.Stats, local.Stats)
		}
	}

	n, err := c.Exec(`Insert student (name := "Remote, Kid", soc-sec-no := 300000001).`)
	if err != nil || n != 1 {
		t.Fatalf("Exec: n=%d err=%v", n, err)
	}
	r, err := db.Query(`From student Retrieve name Where soc-sec-no = 300000001.`)
	if err != nil || r.NumRows() != 1 {
		t.Fatalf("insert not visible locally: rows=%v err=%v", r, err)
	}

	ex, err := c.Explain(`From student Retrieve name Where student-nbr = 1001.`)
	if err != nil || ex == "" {
		t.Fatalf("Explain: %q err=%v", ex, err)
	}
	lex, err := db.Explain(`From student Retrieve name Where student-nbr = 1001.`)
	if err != nil || ex != lex {
		t.Fatalf("remote explain diverged from local:\n%q\n%q (err=%v)", ex, lex, err)
	}

	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.Checkpoint(context.Background()); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st, err := c.ServerStats(context.Background())
	if err != nil {
		t.Fatalf("ServerStats: %v", err)
	}
	if st.Requests == 0 || st.Connections == 0 || st.Active == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

func TestErrorCodes(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cases := []struct {
		dml  string
		code wire.Code
	}{
		{`From student Retrieve`, wire.CodeParse},
		{`From nosuchclass Retrieve name.`, wire.CodeSemantic},
	}
	for _, tc := range cases {
		_, err := c.Query(tc.dml)
		var we *wire.Error
		if !errors.As(err, &we) {
			t.Fatalf("%s: err %T %v, want *wire.Error", tc.dml, err, err)
		}
		if we.Code != tc.code {
			t.Errorf("%s: code %v, want %v (%v)", tc.dml, we.Code, tc.code, we)
		}
	}
	// The session must survive errors: a good query still works.
	if _, err := c.Query(`From student Retrieve name.`); err != nil {
		t.Fatalf("query after errors: %v", err)
	}
}

// TestMalformedFrames throws protocol garbage at a live server; the
// server must never crash and must keep serving fresh connections.
func TestMalformedFrames(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{MaxFrame: 1 << 16})

	send := func(name string, raw []byte) {
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		nc.Write(raw)
	}
	// No handshake at all.
	send("http", []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	// Valid hello framing, wrong magic.
	hello := append([]byte{0, 0, 0, 7, byte(wire.THello)}, []byte("NOTSIM")...)
	send("magic", hello)
	// Hostile length prefix.
	send("length", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x10, 'x'})
	// Handshake then a truncated query frame, connection dropped mid-frame.
	nc := dialRaw(t, addr)
	nc.Write([]byte{0, 0, 1, 0, byte(wire.TQuery), 'F', 'r', 'o'})
	nc.Close()
	// Handshake then an oversize frame.
	nc2 := dialRaw(t, addr)
	wire.WriteFrame(nc2, wire.TQuery, make([]byte, 1<<17))
	// Handshake then a response-typed frame as a request.
	nc3 := dialRaw(t, addr)
	wire.WriteFrame(nc3, wire.TResult, []byte{0})
	if typ, payload, err := wire.ReadFrame(nc3, 0); err == nil {
		if typ != wire.TError {
			t.Fatalf("response-typed request got %v, want TError", typ)
		}
		if e, err := wire.DecodeError(payload); err != nil || e.Code != wire.CodeProtocol {
			t.Fatalf("response-typed request error = %v (%v)", e, err)
		}
	}

	// After all that abuse, a fresh client still gets served.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(`From student Retrieve name.`); err != nil {
		t.Fatalf("server unhealthy after malformed frames: %v", err)
	}
}

// TestDisconnectMidQuery closes the client socket immediately after
// sending a query; the server must absorb the failed response write.
func TestDisconnectMidQuery(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{})
	for i := 0; i < 5; i++ {
		nc := dialRaw(t, addr)
		wire.WriteFrame(nc, wire.TQuery, []byte(`From student Retrieve name, name of advisor.`))
		nc.Close()
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(`From student Retrieve name.`); err != nil {
		t.Fatalf("server unhealthy after disconnects: %v", err)
	}
}

func TestMaxConns(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{MaxConns: 2})
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Both slots taken: the third dial must be refused with CodeBusy.
	_, err = client.Dial(addr)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeBusy {
		t.Fatalf("over-limit dial: err %v, want CodeBusy", err)
	}
	// Releasing a slot re-admits clients.
	c1.Close()
	waitFor(t, func() bool { _, err := client.Dial(addr); return err == nil })
}

func TestRequestTimeout(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{RequestTimeout: time.Nanosecond})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(`From student Retrieve name, name of advisor.`)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeTimeout {
		t.Fatalf("expired request: err %v, want CodeTimeout", err)
	}
}

// TestShutdownDrains verifies a request in flight when Shutdown begins
// still receives its response.
func TestShutdownDrains(t *testing.T) {
	db := testDB(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	c, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type reply struct {
		r   *sim.Result
		err error
	}
	got := make(chan reply, 1)
	go func() {
		r, err := c.Query(`From student Retrieve name, name of advisor.`)
		got <- reply{r, err}
	}()
	time.Sleep(10 * time.Millisecond) // let the query reach the server
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	rep := <-got
	// The race is legitimate: the query either completed before Shutdown
	// observed it (response delivered) or never started (connection
	// closed). What must not happen is a half-written response.
	if rep.err == nil {
		if rep.r.NumRows() == 0 {
			t.Fatal("drained query returned an empty result")
		}
	} else if !isConnErr(rep.err) {
		t.Fatalf("drained query failed oddly: %v", rep.err)
	}
	// The listener is gone.
	if _, err := client.Dial(lis.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestStatsCount(t *testing.T) {
	db := testDB(t)
	srv, addr := startServer(t, db, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Query(`From student Retrieve name.`); err != nil {
			t.Fatal(err)
		}
	}
	c.Query(`From student Retrieve`) // parse error → errors counter
	st := srv.Stats()
	if st.Connections != 1 || st.Requests != 4 || st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 conn, 4 requests, 1 error", st)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("byte counters not moving: %+v", st)
	}
}

func isConnErr(err error) bool {
	return err != nil && (errors.Is(err, net.ErrClosed) ||
		strings.Contains(err.Error(), "EOF") ||
		strings.Contains(err.Error(), "reset") ||
		strings.Contains(err.Error(), "broken pipe"))
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
