package server_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"sim"
	"sim/client"
	"sim/internal/server"
	"sim/internal/wire"
)

// deptCount polls db for a department with dept-nbr nbr, returning
// whether it exists. Used after server-side rollbacks, which complete
// asynchronously with the session teardown.
func deptExists(t *testing.T, db *sim.Database, nbr int) bool {
	t.Helper()
	r, err := db.Query(`From department Retrieve name Where dept-nbr = ` + itoa(nbr) + `.`)
	if err != nil {
		t.Fatal(err)
	}
	return r.NumRows() > 0
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// waitRolledBack proves a server-side rollback (asynchronous with
// session teardown) completed. MVCC readers never saw the uncommitted
// insert, so its absence alone proves nothing; what a rollback
// observably releases is the store's write latch. A probe write
// demonstrates that by completing, after which the doomed row must
// still be absent.
func waitRolledBack(t *testing.T, db *sim.Database, nbr, probe int) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec(`Insert department (dept-nbr := ` + itoa(probe) + `, name := "Probe").`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("probe write after rollback: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probe write still blocked: rollback never released the write latch")
	}
	if deptExists(t, db, nbr) {
		t.Fatalf("department %d present: rolled-back insert committed", nbr)
	}
}

// TestTxInterleavedConnections runs explicit transactions on two
// connections at once: writes to the same entity conflict fast
// (CodeConflict over the wire, non-fatal), writes to a distinct entity
// — even of the same class — queue behind the winner's write phase and
// proceed once it commits, and each transaction sees its own
// uncommitted writes.
func TestTxInterleavedConnections(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{})
	ctx := context.Background()

	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	txA, err := a.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	txB, err := b.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txA.Exec(ctx, `Modify department (name := "Mathematics") Where dept-nbr = 100.`); err != nil {
		t.Fatal(err)
	}
	if _, err := txA.Exec(ctx, `Insert department (dept-nbr := 400, name := "Chem").`); err != nil {
		t.Fatal(err)
	}
	// txA latched the department-100 entity: txB's write to the same
	// entity is refused with a structured conflict, and txB stays usable.
	_, err = txB.Exec(ctx, `Modify department (name := "Maths") Where dept-nbr = 100.`)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeConflict {
		t.Fatalf("same-entity write on second connection: %v, want wire.CodeConflict", err)
	}
	// txA sees its own uncommitted insert through its session.
	r, err := txA.Query(ctx, `From department Retrieve name Where dept-nbr = 400.`)
	if err != nil || r.NumRows() != 1 {
		t.Fatalf("tx read-your-writes over the wire: rows=%v err=%v", r, err)
	}

	// A distinct entity of the same class does not conflict — txB queues
	// behind txA's write phase and completes once txA commits.
	done := make(chan error, 1)
	go func() {
		_, err := txB.Exec(ctx, `Insert department (dept-nbr := 401, name := "Bio").`)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("second writer finished before the first committed: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := txA.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued write after winner committed: %v", err)
	}
	if err := txB.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Both transactions' effects are durable and visible everywhere.
	if !deptExists(t, db, 400) {
		t.Fatal("txA's committed insert missing")
	}
	if !deptExists(t, db, 401) {
		t.Fatal("txB's committed insert missing")
	}
	r, err = a.Query(`From department Retrieve name Where name = "Mathematics".`)
	if err != nil || r.NumRows() != 1 {
		t.Fatalf("txA's committed modify missing: rows=%v err=%v", r, err)
	}
}

// TestShutdownRollsBackOpenTx: draining the server with a transaction
// open on an idle connection must not stall, and must roll the
// transaction back.
func TestShutdownRollsBackOpenTx(t *testing.T) {
	db := testDB(t)
	srv, addr := startServer(t, db, server.Config{})
	ctx := context.Background()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Insert department (dept-nbr := 500, name := "Doomed").`); err != nil {
		t.Fatal(err)
	}
	// The insert is visible to the transaction's own session but not to
	// independent snapshot readers.
	r, err := tx.Query(ctx, `From department Retrieve name Where dept-nbr = 500.`)
	if err != nil || r.NumRows() != 1 {
		t.Fatalf("tx read-your-writes before shutdown: rows=%v err=%v", r, err)
	}
	if deptExists(t, db, 500) {
		t.Fatal("uncommitted insert leaked to an independent reader")
	}

	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown with an open transaction: %v", err)
	}
	waitRolledBack(t, db, 500, 501)
}

// TestTxLostOnRedial: when the connection carrying an open transaction
// dies, transaction operations must surface the fatal ErrTxLost instead
// of transparently redialing (which could double-apply), while plain
// requests on the same Conn recover via redial as usual.
func TestTxLostOnRedial(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{ReadTimeout: 30 * time.Millisecond})
	ctx := context.Background()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Insert department (dept-nbr := 600, name := "Lost").`); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // server reaps the idle session and rolls back

	if _, err := tx.Exec(ctx, `Insert department (dept-nbr := 601, name := "More").`); !errors.Is(err, client.ErrTxLost) {
		t.Fatalf("exec on lost transaction: %v, want ErrTxLost", err)
	}
	// The Conn itself recovers: an ordinary request redials transparently.
	if _, err := c.Query(`From department Retrieve name.`); err != nil {
		t.Fatalf("plain query after transaction loss: %v", err)
	}
	// The transaction stays dead even though the Conn is healthy again.
	if err := tx.Commit(ctx); !errors.Is(err, client.ErrTxLost) {
		t.Fatalf("commit on lost transaction: %v, want ErrTxLost", err)
	}
	// The server rolled back: nothing the transaction wrote survives.
	waitRolledBack(t, db, 600, 699)
}

// TestTxStateErrors drives the transaction-control frames at the wire
// level through every wrong-state path.
func TestTxStateErrors(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{})
	nc := dialRaw(t, addr)

	call := func(req wire.Type) (wire.Type, []byte) {
		t.Helper()
		if err := wire.WriteFrame(nc, req, nil); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := wire.ReadFrame(nc, 0)
		if err != nil {
			t.Fatal(err)
		}
		return typ, payload
	}
	wantTxState := func(req wire.Type) {
		t.Helper()
		typ, payload := call(req)
		if typ != wire.TError {
			t.Fatalf("%v in wrong state: got %v, want TError", req, typ)
		}
		e, err := wire.DecodeError(payload)
		if err != nil {
			t.Fatal(err)
		}
		if e.Code != wire.CodeTxState {
			t.Fatalf("%v in wrong state: code %v, want CodeTxState", req, e.Code)
		}
	}

	wantTxState(wire.TCommit)   // no transaction open
	wantTxState(wire.TRollback) // no transaction open
	if typ, _ := call(wire.TBegin); typ != wire.TOK {
		t.Fatalf("Begin: got %v, want TOK", typ)
	}
	wantTxState(wire.TBegin)      // already open
	wantTxState(wire.TCheckpoint) // would deadlock on the tx's own latch
	if typ, _ := call(wire.TRollback); typ != wire.TOK {
		t.Fatalf("Rollback: got %v, want TOK", typ)
	}
	// Back to idle: checkpoint works again.
	if typ, _ := call(wire.TCheckpoint); typ != wire.TOK {
		t.Fatalf("Checkpoint after rollback: got %v, want TOK", typ)
	}
}
