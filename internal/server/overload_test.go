package server_test

import (
	"fmt"
	"sync"
	"testing"

	"sim/internal/obs"
	"sim/internal/server"
	"sim/internal/wire"
)

// With MaxInflight=1 and eight clients firing queries at the same
// instant, the server must fast-fail the overflow with CodeOverloaded
// instead of queueing it, leave those sessions usable, and count the
// refusals. The flood query cross-products students × instructors so
// each request spans several preemption quanta — overlap then happens
// even on a single-core scheduler — but it is still probabilistic per
// round, so the test fires rounds until it observes a fast-fail
// (bounded; one round virtually always suffices).
func TestMaxInflightFastFail(t *testing.T) {
	db := testDB(t)
	// Bulk up the cross product (testDB seeds 20 students, 1 instructor).
	for i := 0; i < 120; i++ {
		if _, err := db.Exec(fmt.Sprintf(`Insert instructor (name := "Prof %03d",
		  soc-sec-no := %d, employee-nbr := %d, salary := 50000).`,
			i, 300000000+i, 2001+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 150; i++ {
		if _, err := db.Exec(fmt.Sprintf(`Insert student (name := "Crowd %03d",
		  soc-sec-no := %d, student-nbr := %d).`,
			i, 400000000+i, 5001+i)); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	srv, addr := startServer(t, db, server.Config{MaxInflight: 1, Registry: reg})

	const clients = 8
	conns := make([]*rawSession, clients)
	for i := range conns {
		conns[i] = newRawSession(t, addr)
	}

	overloads := 0
	for round := 0; round < 20 && overloads == 0; round++ {
		start := make(chan struct{})
		results := make(chan wire.Type, clients)
		var wg sync.WaitGroup
		for _, rs := range conns {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				rt, _ := rs.roundTrip(t, wire.TQuery, wire.EncodeRequest(1, []byte(`From student, instructor
				  Retrieve name of student, name of instructor
				  Where name of student NEQ name of instructor.`)))
				results <- rt
			}()
		}
		close(start)
		wg.Wait()
		close(results)
		for rt := range results {
			if rt == wire.TError {
				overloads++
			}
		}
	}
	if overloads == 0 {
		t.Fatal("no request was ever fast-failed under MaxInflight=1")
	}
	if got := srv.Stats().Errors; got == 0 {
		t.Error("fast-fails not counted in server errors")
	}
	if got := reg.Get("sim_server_fastfail_total"); got < 1 {
		t.Errorf("sim_server_fastfail_total = %v, want >= 1", got)
	}

	// A fast-failed session stays open: the same connections still serve.
	for _, rs := range conns {
		if rt, _ := rs.roundTrip(t, wire.TPing, nil); rt != wire.TPong {
			t.Fatalf("session dead after overload: %v", rt)
		}
	}
}

// rawSession is a handshaken wire connection with sequential round trips.
type rawSession struct {
	nc interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
	}
	mu sync.Mutex
}

func newRawSession(t *testing.T, addr string) *rawSession {
	t.Helper()
	return &rawSession{nc: dialRaw(t, addr)}
}

func (rs *rawSession) roundTrip(t *testing.T, rt wire.Type, payload []byte) (wire.Type, []byte) {
	t.Helper()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := wire.WriteFrame(rs.nc, rt, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	typ, resp, err := wire.ReadFrame(rs.nc, 0)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	return typ, resp
}

// Decoded overload errors carry the new code, and the code renders.
func TestOverloadedCodeDecodes(t *testing.T) {
	e, err := wire.DecodeError(wire.EncodeError(wire.CodeOverloaded, "full"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeOverloaded || e.Code.String() != "overloaded" {
		t.Errorf("decoded %v (%s)", e.Code, e.Code)
	}
}
