package server

import (
	"fmt"

	"sim/internal/repl"
	"sim/internal/wire"
)

// Replication role transitions. The server starts in whatever role Config
// describes (primary with a Publisher, replica with ReadOnly, or neither)
// and may change it at runtime: a TPromote frame turns a replica into the
// primary, and a fencing event — a follower's ReplHello or a TRetarget
// frame carrying a higher epoch — turns a primary read-only. All of it is
// guarded by roleMu so a write racing a promotion sees either the old
// role's answer (CodeReadOnly/CodeFenced) or the new one, never a torn
// mixture.

// publisher returns the publisher currently serving replication streams.
func (s *Server) publisher() *repl.Publisher {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	return s.pub
}

// role returns the current write-dispatch gates.
func (s *Server) role() (readOnly bool, fencedBy uint64) {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	return s.readOnly, s.fencedBy
}

// replStatus answers TReplStatus from the current role: the configured
// (or promoted) status source, with the role overridden to "fenced" when
// a higher epoch has demoted this node.
func (s *Server) replStatus() wire.ReplStatus {
	s.roleMu.Lock()
	fn := s.statusFn
	fencedBy := s.fencedBy
	s.roleMu.Unlock()
	st := wire.ReplStatus{Role: "none"}
	if fn != nil {
		st = fn()
	}
	if fencedBy != 0 {
		st.Role = "fenced"
		if fencedBy > st.Epoch {
			st.Epoch = fencedBy
		}
	}
	return st
}

// fence demotes this node under epoch: writes answer CodeFenced, the
// sealed publisher stops shipping new groups, and ReplStatus reports
// "fenced". Idempotent per epoch; each strictly higher epoch re-fires
// OnFence so a rejoined follower can chase a second failover.
func (s *Server) fence(epoch uint64, newPrimary string) {
	s.roleMu.Lock()
	if epoch <= s.fencedBy {
		s.roleMu.Unlock()
		return
	}
	s.fencedBy = epoch
	pub := s.pub
	hook := s.cfg.OnFence
	s.roleMu.Unlock()
	s.log.Warn("fenced by higher epoch; demoting to read-only",
		"epoch", epoch, "new_primary", newPrimary)
	if pub != nil {
		// The demoted primary's database is about to be owned by a
		// replication applier; the WAL hooks must stop feeding the old
		// publisher before that happens.
		pub.Seal()
	}
	if hook != nil {
		hook(epoch, newPrimary)
	}
}

// setPrimary installs a freshly promoted publisher as this node's role:
// writes open up, fencing state clears, and ReplStatus reports from the
// new publisher. It refuses a publisher whose epoch does not exceed the
// highest epoch this node was fenced by: the Promote callback is
// idempotent and returns the cached promotion on a retry, so a node
// promoted to epoch E and later fenced by E' > E would otherwise
// resurrect its stale, sealed publisher — accepting writes at epoch E
// that replicate nowhere while a newer primary owns the cluster.
func (s *Server) setPrimary(pub *repl.Publisher) error {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	if pub.Epoch() <= s.fencedBy {
		return fmt.Errorf("epoch %d was fenced by %d; a newer primary owns this database",
			pub.Epoch(), s.fencedBy)
	}
	s.pub = pub
	s.statusFn = pub.Status
	s.readOnly = false
	s.fencedBy = 0
	return nil
}

// handlePromote serves a TPromote frame: run the configured promotion
// (follower drain + epoch advance + publisher open) and flip the
// dispatch role. Idempotent — the Promote callback returns the same
// publisher on a retry, and a node that is already primary answers with
// its own epoch — but never resurrecting: once a higher epoch has fenced
// this node, a retried promotion answers CodeFenced instead of re-opening
// writes at the stale term.
func (s *Server) handlePromote() (wire.Type, []byte) {
	if s.cfg.Promote == nil {
		s.roleMu.Lock()
		pub, fencedBy := s.pub, s.fencedBy
		s.roleMu.Unlock()
		if pub != nil {
			if fencedBy != 0 {
				return wire.TError, wire.EncodeError(wire.CodeFenced,
					fmt.Sprintf("fenced by epoch %d; a newer primary owns this database", fencedBy))
			}
			// Already primary: answer with the epoch we own so a retried
			// promotion converges instead of erroring.
			return wire.TPromoteOK, wire.EncodePromoteOK(pub.Epoch())
		}
		return wire.TError, wire.EncodeError(wire.CodeProtocol,
			"this server is not a replica; nothing to promote")
	}
	pub, err := s.cfg.Promote()
	if err != nil {
		return wire.TError, wire.EncodeError(wire.CodeExec, fmt.Sprintf("promote: %v", err))
	}
	if err := s.setPrimary(pub); err != nil {
		return wire.TError, wire.EncodeError(wire.CodeFenced, fmt.Sprintf("promote: %v", err))
	}
	s.log.Info("promoted to primary", "epoch", pub.Epoch())
	return wire.TPromoteOK, wire.EncodePromoteOK(pub.Epoch())
}

// handleRetarget serves a TRetarget frame, the active fencing vector. On
// a primary it is a fencing notice: a strictly higher epoch demotes this
// node (TOK acknowledges the demotion), anything else is refused with
// CodeFenced — the sender holds a stale term. On a replica it re-points
// the replication stream at the new primary's address.
func (s *Server) handleRetarget(payload []byte) (wire.Type, []byte) {
	rt, err := wire.DecodeRetarget(payload)
	if err != nil {
		return wire.TError, wire.EncodeError(wire.CodeProtocol, err.Error())
	}
	if pub := s.publisher(); pub != nil {
		if rt.Epoch > pub.Epoch() {
			s.fence(rt.Epoch, rt.Addr)
			return wire.TOK, nil
		}
		return wire.TError, wire.EncodeError(wire.CodeFenced,
			fmt.Sprintf("refusing retarget: this primary holds epoch %d >= %d", pub.Epoch(), rt.Epoch))
	}
	if s.cfg.Retarget == nil {
		return wire.TError, wire.EncodeError(wire.CodeProtocol,
			"this server is not replicating; nothing to retarget")
	}
	if rt.Addr == "" {
		return wire.TError, wire.EncodeError(wire.CodeProtocol, "retarget wants a primary address")
	}
	if err := s.cfg.Retarget(rt.Addr); err != nil {
		return wire.TError, wire.EncodeError(wire.CodeExec, fmt.Sprintf("retarget: %v", err))
	}
	s.log.Info("replication retargeted", "primary", rt.Addr, "epoch", rt.Epoch)
	return wire.TOK, nil
}
