package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sim/internal/obs"
	"sim/internal/repl"
	"sim/internal/wire"
)

// replHeartbeat is how often an idle replication stream sends an empty
// frame so the follower can detect a dead primary (and vice versa via the
// ack it answers with).
const replHeartbeat = time.Second

// replSnapshotChunk is the payload size of one snapshot frame. Snapshots
// stream in bounded chunks so one cold follower never pins a whole
// database image in a single frame.
const replSnapshotChunk = 256 << 10

// serveReplication turns the connection into a log-shipping stream: it
// answers the follower's ReplHello with either the committed tail (when
// the follower's position is still in the publisher's ring) or a fresh
// base snapshot, then keeps pushing committed groups and heartbeats until
// the connection dies or the server shuts down. A reader goroutine
// consumes the follower's acks for lag accounting; acks never gate
// commits.
func (s *Server) serveReplication(conn net.Conn, payload []byte) {
	pub := s.publisher()
	if pub == nil {
		s.errors.Add(1)
		s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeProtocol,
			"this server does not publish a replication stream"))
		return
	}
	hello, err := wire.DecodeReplHello(payload)
	if err != nil {
		s.errors.Add(1)
		s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeProtocol, err.Error()))
		return
	}
	if _, fencedBy := s.role(); fencedBy != 0 {
		s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeFenced,
			fmt.Sprintf("fenced by epoch %d; this node no longer publishes", fencedBy)))
		return
	}
	if hello.Epoch > pub.Epoch() {
		// Passive fencing: the follower has applied history from a newer
		// epoch than ours, so a newer primary exists somewhere — this node
		// must stop accepting writes even before the new primary's fencer
		// reaches it. We don't learn the new primary's address here.
		s.fence(hello.Epoch, "")
		s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeFenced,
			fmt.Sprintf("follower holds epoch %d > %d; fencing myself", hello.Epoch, pub.Epoch())))
		return
	}
	remote := conn.RemoteAddr().String()
	peer := pub.Register(remote)
	defer pub.Unregister(peer)
	s.log.Info("replication stream open", "remote", remote,
		"epoch", hello.Epoch, "pos", hello.Pos)

	// stop closes when the follower hangs up (its ack stream breaks) or
	// the server drains; the writer loop unblocks on it.
	stop := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stop) }) }
	go func() {
		select {
		case <-s.quit:
			conn.Close() // unblock the ack reader
		case <-stop:
		}
		closeStop()
	}()
	go func() {
		defer closeStop()
		conn.SetReadDeadline(time.Time{})
		for {
			t, p, err := wire.ReadFrame(conn, s.cfg.MaxFrame)
			if err != nil {
				return
			}
			if t != wire.TReplAck {
				return
			}
			pos, err := wire.DecodeReplAck(p)
			if err != nil {
				return
			}
			peer.Ack(pos)
		}
	}()

	sub, err := pub.Subscribe(hello.Epoch, hello.Run, hello.Pos)
	if errors.Is(err, repl.ErrSnapshotNeeded) {
		sub, err = s.sendSnapshot(conn, pub, peer)
	}
	if err != nil {
		s.log.Warn("replication stream failed", "remote", remote, "err", err)
		closeStop()
		return
	}
	defer func() { pub.Unsubscribe(sub) }()
	peer.SetState("streaming")

	// An immediate heartbeat tells the follower the primary's current
	// position, so it can report lag (and readiness) before the first
	// committed group arrives.
	if err := s.sendHeartbeat(conn, pub); err != nil {
		return
	}
	for {
		groups, err := sub.Next(stop, replHeartbeat)
		switch {
		case errors.Is(err, repl.ErrSnapshotNeeded):
			// The follower fell behind the retained tail mid-stream;
			// re-seed it on the same connection.
			pub.Unsubscribe(sub)
			sub, err = s.sendSnapshot(conn, pub, peer)
			if err != nil {
				s.log.Warn("replication re-snapshot failed", "remote", remote, "err", err)
				return
			}
			peer.SetState("streaming")
			continue
		case err != nil: // ErrStopped: connection gone or server draining
			return
		case groups == nil: // idle past the heartbeat interval
			if err := s.sendHeartbeat(conn, pub); err != nil {
				return
			}
			continue
		}
		latest := pub.Latest()
		for _, g := range groups {
			f := wire.ReplFrames{Epoch: pub.Epoch(), Run: pub.Run(), Pos: g.Pos, Latest: latest,
				Gen: g.Gen, TS: g.TS, IDs: g.IDs, Pages: g.Pages}
			shipStart := time.Now()
			if err := s.writeFrame(conn, wire.TReplFrames, wire.EncodeReplFrames(f)); err != nil {
				s.log.Warn("replication write failed", "remote", remote, "err", err)
				return
			}
			var id uint64
			if len(g.IDs) > 0 {
				id = g.IDs[0]
			}
			s.flight.Record(obs.FlightEvent{Comp: "server", Kind: "ship", ID: id,
				Pos: g.Pos, Dur: time.Since(shipStart), N: int64(len(g.Pages)), Note: remote})
		}
	}
}

// sendHeartbeat writes an empty frame at position 0 carrying the
// primary's newest position.
func (s *Server) sendHeartbeat(conn net.Conn, pub *repl.Publisher) error {
	f := wire.ReplFrames{Epoch: pub.Epoch(), Run: pub.Run(), Latest: pub.Latest()}
	return s.writeFrame(conn, wire.TReplFrames, wire.EncodeReplFrames(f))
}

// sendSnapshot streams a base image of the database in bounded chunks and
// returns the subscription that continues exactly after it.
func (s *Server) sendSnapshot(conn net.Conn, pub *repl.Publisher, peer *repl.Peer) (*repl.Subscription, error) {
	peer.SetState("snapshot")
	img, pos, gen, sub, err := pub.Snapshot()
	if err != nil {
		s.writeFrame(conn, wire.TError, wire.EncodeError(wire.CodeInternal, err.Error()))
		return nil, err
	}
	s.log.Info("replication snapshot", "remote", conn.RemoteAddr().String(),
		"pos", pos, "bytes", len(img))
	for off := 0; ; {
		n := len(img) - off
		if n > replSnapshotChunk {
			n = replSnapshotChunk
		}
		f := wire.ReplSnapshot{
			Epoch:  pub.Epoch(),
			Run:    pub.Run(),
			Pos:    pos,
			Gen:    gen,
			Total:  uint64(len(img)),
			Offset: uint64(off),
			Chunk:  img[off : off+n],
		}
		if err := s.writeFrame(conn, wire.TReplSnapshot, wire.EncodeReplSnapshot(f)); err != nil {
			pub.Unsubscribe(sub)
			return nil, err
		}
		if off += n; off >= len(img) {
			return sub, nil
		}
	}
}
