package server_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"sim/client"
	"sim/internal/server"
	"sim/internal/wire"
)

// helloAt performs a raw Hello exchange claiming protocol version v and
// returns the response frame.
func helloAt(t *testing.T, addr string, v byte) (wire.Type, []byte) {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(nc, wire.THello, append([]byte(wire.Magic), v)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(nc, 0)
	if err != nil {
		t.Fatal(err)
	}
	return typ, payload
}

// TestHandshakeVersionCompat: the server accepts every version in
// [MinVersion, Version] and echoes the client's own version back (an
// old client checks for strict equality with its own); anything outside
// the window is refused with CodeProtocol.
func TestHandshakeVersionCompat(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{})

	for v := wire.MinVersion; v <= wire.Version; v++ {
		typ, payload := helloAt(t, addr, byte(v))
		if typ != wire.THello {
			t.Fatalf("version %d: response %v, want Hello", v, typ)
		}
		got, err := wire.DecodeHello(payload)
		if err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		if got != byte(v) {
			t.Fatalf("version %d: server echoed %d, want the client's own version", v, got)
		}
	}
	for _, v := range []byte{wire.MinVersion - 1, wire.Version + 1} {
		typ, payload := helloAt(t, addr, v)
		if typ != wire.TError {
			t.Fatalf("version %d: response %v, want TError", v, typ)
		}
		e, err := wire.DecodeError(payload)
		if err != nil {
			t.Fatal(err)
		}
		if e.Code != wire.CodeProtocol {
			t.Fatalf("version %d: code %v, want CodeProtocol", v, e.Code)
		}
	}
}

// TestReadOnlyTxOverWire: a ReadOnly Begin serves snapshot queries,
// refuses Exec with CodeReadOnly without dying, and commits cleanly.
func TestReadOnlyTxOverWire(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	tx, err := c.Begin(ctx, client.ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	if !tx.ReadOnly() {
		t.Fatal("ReadOnly() = false")
	}
	r, err := tx.Query(ctx, `From student Retrieve name.`)
	if err != nil {
		t.Fatal(err)
	}
	before := r.NumRows()

	// A write committed elsewhere stays invisible to the pinned snapshot.
	// (On a second connection: requests on the transaction's own Conn
	// join the open transaction server-side.)
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Exec(`Insert student (name := "Late, Arrival", soc-sec-no := 300000001, student-nbr := 5001).`); err != nil {
		t.Fatal(err)
	}
	r, err = tx.Query(ctx, `From student Retrieve name.`)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != before {
		t.Fatalf("pinned snapshot saw a later commit: %d rows, want %d", r.NumRows(), before)
	}

	var we *wire.Error
	if _, err := tx.Exec(ctx, `Insert student (name := "No", soc-sec-no := 300000002, student-nbr := 5002).`); !errors.As(err, &we) || we.Code != wire.CodeReadOnly {
		t.Fatalf("Exec in read-only tx: %v, want CodeReadOnly", err)
	}
	// The refusal did not kill the transaction.
	if _, err := tx.Query(ctx, `From student Retrieve name.`); err != nil {
		t.Fatalf("query after refused write: %v", err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestMultiRoutesReadOnlyTxToReplica: DialMulti sends ReadOnly
// transactions to the replica rotation and read-write ones to the
// primary. The two servers intentionally hold different data so the
// row count proves which node answered.
func TestMultiRoutesReadOnlyTxToReplica(t *testing.T) {
	primary := testDB(t)
	_, paddr := startServer(t, primary, server.Config{})
	replica := testDB(t)
	if _, err := replica.Exec(`Insert student (name := "Replica, Only", soc-sec-no := 300000009, student-nbr := 5009).`); err != nil {
		t.Fatal(err)
	}
	_, raddr := startServer(t, replica, server.Config{ReadOnly: true})

	m, err := client.DialMulti([]string{paddr, raddr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()

	countVia := func(tx *client.Tx) int {
		t.Helper()
		r, err := tx.Query(ctx, `From student Retrieve name.`)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		return r.NumRows()
	}
	rw, err := m.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	primaryRows := countVia(rw)
	ro, err := m.Begin(ctx, client.ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	if got := countVia(ro); got != primaryRows+1 {
		t.Fatalf("read-only tx saw %d rows, want the replica's %d — routed to the wrong node", got, primaryRows+1)
	}
}

// TestReadOnlyTxOnReplica: a read-only server (replica role) accepts
// ReadOnly Begin/Query/Commit but still refuses a read-write Begin.
func TestReadOnlyTxOnReplica(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, server.Config{ReadOnly: true})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	var we *wire.Error
	if _, err := c.Begin(ctx); !errors.As(err, &we) || we.Code != wire.CodeReadOnly {
		t.Fatalf("read-write Begin on replica: %v, want CodeReadOnly", err)
	}

	tx, err := c.Begin(ctx, client.ReadOnly())
	if err != nil {
		t.Fatalf("read-only Begin on replica: %v", err)
	}
	r, err := tx.Query(ctx, `From student Retrieve name.`)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() == 0 {
		t.Fatal("no rows through the replica's read-only tx")
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("read-only commit on replica: %v", err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("session after read-only tx: %v", err)
	}
}
