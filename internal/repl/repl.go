// Package repl is the log-shipping replication subsystem: a primary-side
// Publisher that turns the WAL's committed page groups into a stream of
// positioned frames (plus base snapshots for followers that start cold or
// fall behind the retained tail), and a follower-side Applier/Follower
// pair that replays those frames into a read-only replica database.
//
// Protocol (over the wire package's framing, after the normal Hello):
//
//	follower → primary   ReplHello{epoch, run, pos}   subscribe from a position
//	primary → follower   ReplSnapshot chunks          when the position is gone
//	primary → follower   ReplFrames                   committed groups + heartbeats
//	follower → primary   ReplAck{pos}                 applied position (staleness)
//
// Two identifiers scope a position. The epoch is the persisted fencing
// term (ClaimEpoch/AdvanceEpoch): it advances only when a follower is
// promoted (Follower.Promote), never on a plain restart, so epoch order
// is ownership order — a primary that learns of a higher epoch (via a
// follower's ReplHello or a Retarget frame) fences itself read-only. The
// run is a random nonce drawn each time a Publisher opens: positions are
// assigned monotonically from 1 per run, so a follower may resume a
// stream only when both epoch and run match, and a restarted primary's
// fresh counter can never be confused with history a follower applied
// before the restart. The WAL's own sequence numbers reset at every
// checkpoint truncation, which is exactly why the Publisher keeps its own
// counter: a position survives checkpoints, and "position no longer
// available" (evicted from the in-memory ring, or from another epoch or
// run) is answered with a fresh snapshot rather than an error.
//
// Consistency: replication is asynchronous and the replica is read-only,
// so a follower serves a bounded-stale but always transaction-consistent
// view — groups are applied atomically through the follower's own WAL,
// and the applied position only advances after the group is durable.
package repl

import "errors"

// ErrSnapshotNeeded reports that a follower's position cannot be served
// from the retained tail — it predates the ring, or belongs to another
// epoch — and the follower must be re-seeded with a base snapshot.
var ErrSnapshotNeeded = errors.New("repl: position no longer available; snapshot needed")

// ErrStopped reports that a subscription's Next was interrupted by its
// stop channel (connection gone, server draining).
var ErrStopped = errors.New("repl: subscription stopped")
