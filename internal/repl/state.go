package repl

import (
	"encoding/binary"
	"hash/crc32"
	"os"
)

// State is a follower's durable replication position: the primary epoch
// it follows and the last position it has fully applied. It lives in a
// small sidecar file next to the replica's database file and is written
// only after the applied group is durable in the replica's own WAL — so
// the recorded position never runs ahead of the data, and a crash between
// apply and save merely re-applies one idempotent group on resume.
type State struct {
	Epoch uint64
	Pos   uint64
}

// stateMagic opens the sidecar file.
const stateMagic = "SIMR"

// stateSize is the sidecar length: magic(4) epoch(8) pos(8) crc32(4).
const stateSize = 24

// SaveState durably writes the sidecar at path.
func SaveState(path string, st State) error {
	var buf [stateSize]byte
	copy(buf[:4], stateMagic)
	binary.BigEndian.PutUint64(buf[4:12], st.Epoch)
	binary.BigEndian.PutUint64(buf[12:20], st.Pos)
	binary.BigEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(buf[:20]))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadState reads the sidecar at path. A missing, short, or corrupt file
// yields the zero State — the follower then requests a snapshot, which is
// always safe.
func LoadState(path string) State {
	b, err := os.ReadFile(path)
	if err != nil || len(b) != stateSize || string(b[:4]) != stateMagic {
		return State{}
	}
	if crc32.ChecksumIEEE(b[:20]) != binary.BigEndian.Uint32(b[20:24]) {
		return State{}
	}
	return State{
		Epoch: binary.BigEndian.Uint64(b[4:12]),
		Pos:   binary.BigEndian.Uint64(b[12:20]),
	}
}
