package repl

import (
	"encoding/binary"
	"hash/crc32"
	"os"
)

// State is a follower's durable replication position: the primary epoch
// and publisher run it follows and the last position it has fully
// applied. It lives in a small sidecar file next to the replica's
// database file and is written only after the applied group is durable in
// the replica's own WAL — so the recorded position never runs ahead of
// the data, and a crash between apply and save merely re-applies one
// idempotent group on resume.
type State struct {
	Epoch uint64
	Run   uint64
	Pos   uint64
}

// stateMagic opens the sidecar file.
const stateMagic = "SIMR"

// stateSize is the sidecar length: magic(4) epoch(8) run(8) pos(8)
// crc32(4). A sidecar from before the run field was added fails the
// length check and loads as the zero State, costing one re-snapshot.
const stateSize = 32

// SaveState durably writes the sidecar at path.
func SaveState(path string, st State) error {
	var buf [stateSize]byte
	copy(buf[:4], stateMagic)
	binary.BigEndian.PutUint64(buf[4:12], st.Epoch)
	binary.BigEndian.PutUint64(buf[12:20], st.Run)
	binary.BigEndian.PutUint64(buf[20:28], st.Pos)
	binary.BigEndian.PutUint32(buf[28:32], crc32.ChecksumIEEE(buf[:28]))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadState reads the sidecar at path. A missing, short, or corrupt file
// yields the zero State — the follower then requests a snapshot, which is
// always safe.
func LoadState(path string) State {
	b, err := os.ReadFile(path)
	if err != nil || len(b) != stateSize || string(b[:4]) != stateMagic {
		return State{}
	}
	if crc32.ChecksumIEEE(b[:28]) != binary.BigEndian.Uint32(b[28:32]) {
		return State{}
	}
	return State{
		Epoch: binary.BigEndian.Uint64(b[4:12]),
		Run:   binary.BigEndian.Uint64(b[12:20]),
		Pos:   binary.BigEndian.Uint64(b[20:28]),
	}
}
