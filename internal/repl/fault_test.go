package repl_test

import (
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sim"
	"sim/internal/dmsii"
	"sim/internal/fault"
	"sim/internal/pager"
	"sim/internal/repl"
	"sim/internal/wal"
	"sim/internal/wire"
)

// openFaultReplica assembles a replica Database over fault-wrapped
// in-memory storage, mirroring the primary-side crash matrix: crashing it
// freezes the images, and reopening with a fresh injector models the
// post-reboot recovery path.
func openFaultReplica(inj *fault.Injector, dbImg, walImg *pager.MemByteFile) (*sim.Database, error) {
	file := pager.NewChecksumFile(fault.Wrap("db", dbImg, inj))
	log, err := wal.OpenBacking(fault.Wrap("wal", walImg, inj))
	if err != nil {
		return nil, err
	}
	store, err := dmsii.OpenFiles(file, log, dmsii.Options{})
	if err != nil {
		return nil, err
	}
	return sim.OpenStore(store, sim.Config{})
}

// captureStream builds a primary and records the replication inputs a
// follower would receive: the base snapshot of the empty database and
// every committed group of the workload, as wire frames.
func captureStream(t *testing.T) (pdb *sim.Database, epoch, run uint64, img []byte, frames []wire.ReplFrames, want string) {
	t.Helper()
	var err error
	pdb, err = sim.Open(filepath.Join(t.TempDir(), "primary.db"), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pdb.Close() })
	pub, err := repl.NewPublisher(pdb, repl.Config{})
	if err != nil {
		t.Fatal(err)
	}
	epoch = pub.Epoch()
	run = pub.Run()

	// Snapshot the empty database, keeping the subscription that
	// continues exactly after it.
	img, pos, _, sub, err := pub.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Unsubscribe(sub)
	if pos != 0 {
		t.Fatalf("empty-database snapshot at pos %d", pos)
	}

	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustExec(t, pdb, fmt.Sprintf(`Insert item (item-no := %d, name := "item %02d").`, i+1, i))
	}
	mustExec(t, pdb, `Modify item (name := "renamed") Where item-no = 3.`)
	mustExec(t, pdb, `Delete item Where item-no = 5.`)

	stop := make(chan struct{})
	for {
		groups, err := sub.Next(stop, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if groups == nil {
			break // drained: heartbeat timeout with nothing new
		}
		for _, g := range groups {
			frames = append(frames, wire.ReplFrames{
				Epoch: epoch, Run: run, Pos: g.Pos, Latest: pub.Latest(), Gen: g.Gen, Pages: g.Pages,
			})
		}
	}
	if len(frames) == 0 {
		t.Fatal("no groups captured")
	}
	r, err := pdb.Query(`From item Retrieve name Order By name.`)
	if err != nil {
		t.Fatal(err)
	}
	return pdb, epoch, run, img, frames, r.Format()
}

// TestFollowerCrashMatrix crashes the follower's storage stack at EVERY
// mutating-operation boundary of the replicated apply path — including
// torn-write variants — then reboots the frozen images, resumes from the
// sidecar position, redelivers the stream, and asserts the replica
// converges to the primary's committed state with clean storage.
func TestFollowerCrashMatrix(t *testing.T) {
	_, epoch, run, img, frames, want := captureStream(t)
	dir := t.TempDir()

	// Dry run: apply everything fault-free to learn the op schedule and
	// confirm the baseline converges.
	applyAll := func(inj *fault.Injector, dbImg, walImg *pager.MemByteFile, statePath string) (err error) {
		db, err := openFaultReplica(inj, dbImg, walImg)
		if err != nil {
			return err
		}
		// Close flushes too: a crash firing there must surface, not vanish
		// into a dropped deferred error.
		defer func() {
			if cerr := db.Close(); err == nil {
				err = cerr
			}
		}()
		a := repl.NewApplier(db, statePath)
		if a.State() == (repl.State{}) {
			if err := a.ApplySnapshot(epoch, run, 0, img); err != nil {
				return err
			}
		}
		for _, f := range frames {
			if err := a.ApplyGroup(f); err != nil {
				return err
			}
		}
		return nil
	}
	check := func(t *testing.T, dbImg, walImg *pager.MemByteFile) {
		t.Helper()
		db, err := openFaultReplica(fault.NewInjector(), dbImg, walImg)
		if err != nil {
			t.Fatalf("final open: %v", err)
		}
		defer db.Close()
		r, err := db.Query(`From item Retrieve name Order By name.`)
		if err != nil {
			t.Fatalf("final query: %v", err)
		}
		if r.Format() != want {
			t.Fatalf("replica diverged:\nwant:\n%s\ngot:\n%s", want, r.Format())
		}
		if rep, err := db.Scrub(); err != nil {
			t.Fatalf("scrub: %v (%v)", err, rep)
		}
	}

	inj := fault.NewInjector()
	dbImg, walImg := pager.NewMemByteFile(), pager.NewMemByteFile()
	if err := applyAll(inj, dbImg, walImg, filepath.Join(dir, "dry.repl")); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	check(t, dbImg, walImg)
	total := inj.Ops()
	if total < 10 {
		t.Fatalf("suspiciously few storage ops: %d", total)
	}

	for op := uint64(1); op <= total; op++ {
		for _, torn := range []int{0, 7} {
			name := fmt.Sprintf("crash@%d", op)
			if torn > 0 {
				name = fmt.Sprintf("crash@%d/torn%d", op, torn)
			}
			t.Run(name, func(t *testing.T) {
				statePath := filepath.Join(dir, fmt.Sprintf("crash-%d-torn-%d.repl", op, torn))
				dbImg, walImg := pager.NewMemByteFile(), pager.NewMemByteFile()
				inj := fault.NewInjector()
				if torn > 0 {
					inj.CrashAtTorn(op, torn)
				} else {
					inj.CrashAt(op)
				}
				if err := applyAll(inj, dbImg, walImg, statePath); err == nil {
					t.Fatal("crash never fired")
				}
				// Reboot over the frozen images and redeliver the stream.
				// A crash mid-snapshot-install leaves a torn image with an
				// invalidated sidecar; the recovery there is a fresh
				// snapshot into fresh storage, exactly what a real
				// follower requests when its position is zero.
				if err := applyAll(fault.NewInjector(), dbImg, walImg, statePath); err != nil {
					if repl.LoadState(statePath) != (repl.State{}) {
						t.Fatalf("resume failed with a durable position: %v", err)
					}
					dbImg, walImg = pager.NewMemByteFile(), pager.NewMemByteFile()
					if err := applyAll(fault.NewInjector(), dbImg, walImg, statePath); err != nil {
						t.Fatalf("re-seed after torn snapshot: %v", err)
					}
				}
				check(t, dbImg, walImg)
			})
		}
	}
}

// chokeProxy forwards TCP to target, killing the first connection after
// limit bytes have flowed from the target to the client; later
// connections pass through untouched. It models a network partition
// landing mid-snapshot or mid-stream.
type chokeProxy struct {
	lis    net.Listener
	target string
	limit  int64

	mu    sync.Mutex
	first bool
}

func newChokeProxy(t *testing.T, target string, limit int64) *chokeProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chokeProxy{lis: lis, target: target, limit: limit, first: true}
	t.Cleanup(func() { lis.Close() })
	go p.run()
	return p
}

func (p *chokeProxy) addr() string { return p.lis.Addr().String() }

func (p *chokeProxy) run() {
	for {
		c, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		choke := p.first
		p.first = false
		p.mu.Unlock()
		go p.pipe(c, choke)
	}
}

func (p *chokeProxy) pipe(c net.Conn, choke bool) {
	defer c.Close()
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer up.Close()
	go io.Copy(up, c) // client -> primary (acks, hello)
	if choke {
		io.CopyN(c, up, p.limit) // cut the stream mid-flight
		return
	}
	io.Copy(c, up)
}

// TestFollowerPartitionMidSnapshot cuts the very first replication
// connection in the middle of the base snapshot; the follower must
// reconnect, take a fresh snapshot, converge, and hold clean storage.
func TestFollowerPartitionMidSnapshot(t *testing.T) {
	testFollowerPartition(t, 8<<10) // a few KB: inside the snapshot
}

// TestFollowerPartitionMidStream cuts the connection after the snapshot,
// while committed groups are flowing.
func TestFollowerPartitionMidStream(t *testing.T) {
	testFollowerPartition(t, 512<<10) // past the snapshot, into the tail
}

func testFollowerPartition(t *testing.T, cutAfter int64) {
	pdb, _, paddr := openPrimary(t, 0)
	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mustExec(t, pdb, fmt.Sprintf(`Insert item (item-no := %d, name := "item %03d").`, i+1, i))
	}
	proxy := newChokeProxy(t, paddr, cutAfter)

	dir := t.TempDir()
	rdb, err := sim.Open(filepath.Join(dir, "replica.db"), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdb.Close() })
	f := startFollower(t, rdb, dir, proxy.addr())
	waitReady(t, f)
	const q = `From item Retrieve name Order By name.`
	waitConverged(t, pdb, rdb, q)

	// Keep writing through a reconnect window, then converge again.
	for i := 50; i < 60; i++ {
		mustExec(t, pdb, fmt.Sprintf(`Insert item (item-no := %d, name := "item %03d").`, i+1, i))
	}
	waitConverged(t, pdb, rdb, q)
	f.Close()

	// The replica's storage must be clean: no torn pages survive the
	// partition and reconnect.
	if rep, err := rdb.Scrub(); err != nil {
		t.Fatalf("scrub after partition: %v (%v)", err, rep)
	}
}
