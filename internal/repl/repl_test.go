package repl_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"sim"
	"sim/client"
	"sim/internal/repl"
	"sim/internal/server"
	"sim/internal/wire"
)

const testSchema = `
Class item (
  item-no: integer unique required;
  name: string[24] );
`

// openPrimary builds a file-backed database with a publisher and a server
// in front of it, returning the pieces and the listen address.
func openPrimary(t *testing.T, ringBytes int) (*sim.Database, *repl.Publisher, string) {
	t.Helper()
	db, err := sim.Open(filepath.Join(t.TempDir(), "primary.db"), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	pub, err := repl.NewPublisher(db, repl.Config{RingBytes: ringBytes})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{Publisher: pub, ReplStatus: pub.Status})
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return db, pub, lis.Addr().String()
}

// follower bundles a replica's pieces for tests.
type follower struct {
	db   *sim.Database
	f    *repl.Follower
	srv  *server.Server
	addr string
}

// openFollower starts a replica of primaryAddr in dir, serving reads on
// its own listener.
func openFollower(t *testing.T, dir, primaryAddr string) *follower {
	t.Helper()
	db, err := sim.Open(filepath.Join(dir, "replica.db"), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	f := startFollower(t, db, dir, primaryAddr)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{ReadOnly: true, ReplStatus: f.Status})
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &follower{db: db, f: f, srv: srv, addr: lis.Addr().String()}
}

func startFollower(t *testing.T, db *sim.Database, dir, primaryAddr string) *repl.Follower {
	t.Helper()
	f, err := repl.StartFollower(db, filepath.Join(dir, "replica.db.repl"), repl.FollowerConfig{
		Primary:      primaryAddr,
		Heartbeat:    50 * time.Millisecond,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func waitReady(t *testing.T, f *repl.Follower) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
}

// waitConverged polls until the follower database answers q with the same
// bytes as the primary.
func waitConverged(t *testing.T, pdb, rdb *sim.Database, q string) {
	t.Helper()
	want, err := pdb.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := rdb.Query(q)
		if err == nil && got.Format() == want.Format() {
			return
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("replica never converged: %v", err)
			}
			t.Fatalf("replica never converged:\nprimary:\n%s\nreplica:\n%s", want.Format(), got.Format())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustExec(t *testing.T, db *sim.Database, stmt string) {
	t.Helper()
	if _, err := db.Exec(stmt); err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
}

// TestPublisherPositionsAndEviction exercises the publisher's ring
// directly: monotonic positions, batch delivery in order, and
// ErrSnapshotNeeded once the ring has evicted the subscriber's position.
func TestPublisherPositionsAndEviction(t *testing.T) {
	db, pub, _ := openPrimary(t, 0)
	if err := db.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	base := pub.Latest()
	sub, err := pub.Subscribe(pub.Epoch(), pub.Run(), base)
	if err != nil {
		t.Fatalf("subscribe at latest: %v", err)
	}
	defer pub.Unsubscribe(sub)
	for i := 0; i < 5; i++ {
		mustExec(t, db, fmt.Sprintf(`Insert item (item-no := %d, name := "i%d").`, i+1, i))
	}
	if pub.Latest() != base+5 {
		t.Fatalf("latest = %d, want %d", pub.Latest(), base+5)
	}
	stop := make(chan struct{})
	got := base
	for got < base+5 {
		groups, err := sub.Next(stop, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range groups {
			if g.Pos != got+1 {
				t.Fatalf("group gap: %d after %d", g.Pos, got)
			}
			got = g.Pos
			if len(g.Pages) == 0 {
				t.Fatalf("commit group %d has no pages", g.Pos)
			}
		}
	}

	// Wrong epoch, wrong run, and future positions need snapshots.
	if _, err := pub.Subscribe(pub.Epoch(), pub.Run()+2, base); !errors.Is(err, repl.ErrSnapshotNeeded) {
		t.Fatalf("wrong run: %v", err)
	}
	if _, err := pub.Subscribe(pub.Epoch()+1, pub.Run(), 0); !errors.Is(err, repl.ErrSnapshotNeeded) {
		t.Fatalf("wrong epoch: %v", err)
	}
	if _, err := pub.Subscribe(pub.Epoch(), pub.Run(), pub.Latest()+10); !errors.Is(err, repl.ErrSnapshotNeeded) {
		t.Fatalf("future position: %v", err)
	}

	// A one-byte ring keeps only the newest group: position 0 is evicted.
	db2, pub2, _ := openPrimary(t, 1)
	if err := db2.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db2, `Insert item (item-no := 1, name := "a").`)
	mustExec(t, db2, `Insert item (item-no := 2, name := "b").`)
	if _, err := pub2.Subscribe(pub2.Epoch(), pub2.Run(), 0); !errors.Is(err, repl.ErrSnapshotNeeded) {
		t.Fatalf("evicted position: %v", err)
	}
}

func TestStateSidecarRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.repl")
	if st := repl.LoadState(path); st != (repl.State{}) {
		t.Fatalf("missing sidecar loaded as %+v", st)
	}
	want := repl.State{Epoch: 77, Pos: 123456}
	if err := repl.SaveState(path, want); err != nil {
		t.Fatal(err)
	}
	if got := repl.LoadState(path); got != want {
		t.Fatalf("load = %+v, want %+v", got, want)
	}
}

// TestFollowerEndToEnd is the acceptance path: a follower snapshots into
// a populated primary, serves byte-identical rows, keeps up with new
// writes, rejects writes with CodeReadOnly, and reconverges after a stop
// and restart that spans more primary writes.
func TestFollowerEndToEnd(t *testing.T) {
	pdb, pub, paddr := openPrimary(t, 0)
	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustExec(t, pdb, fmt.Sprintf(`Insert item (item-no := %d, name := "item %03d").`, i+1, i))
	}

	dir := t.TempDir()
	r := openFollower(t, dir, paddr)
	waitReady(t, r.f)
	const q = `From item Retrieve name Order By name.`
	waitConverged(t, pdb, r.db, q)

	// Live tail: new writes arrive without a new snapshot.
	for i := 20; i < 40; i++ {
		mustExec(t, pdb, fmt.Sprintf(`Insert item (item-no := %d, name := "item %03d").`, i+1, i))
	}
	waitConverged(t, pdb, r.db, q)

	// Writes to the replica are refused with the dedicated code.
	rc, err := client.Dial(r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	_, err = rc.Exec(`Insert item (item-no := 999, name := "nope").`)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeReadOnly {
		t.Fatalf("replica write: %v, want CodeReadOnly", err)
	}
	if _, err := rc.Query(q); err != nil {
		t.Fatalf("replica read: %v", err)
	}

	// The primary sees the follower's progress.
	st := pub.Status()
	if st.Role != "primary" || len(st.Replicas) != 1 {
		t.Fatalf("primary status: %+v", st)
	}

	// Stop the follower, write more, restart: the tail (still within the
	// ring) resumes from the sidecar position without a snapshot.
	r.f.Close()
	for i := 40; i < 60; i++ {
		mustExec(t, pdb, fmt.Sprintf(`Insert item (item-no := %d, name := "item %03d").`, i+1, i))
	}
	f2 := startFollower(t, r.db, dir, paddr)
	defer f2.Close()
	waitConverged(t, pdb, r.db, q)
	if got := f2.Status(); got.Role != "replica" {
		t.Fatalf("follower status role = %q", got.Role)
	}
}

// TestFollowerResnapshot starves the ring so a lagging follower must be
// re-seeded with a fresh snapshot mid-stream, and a stopped follower must
// be re-seeded on reconnect.
func TestFollowerResnapshot(t *testing.T) {
	pdb, pub, paddr := openPrimary(t, 1) // one-byte ring: everything evicts
	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	mustExec(t, pdb, `Insert item (item-no := 1, name := "first").`)

	dir := t.TempDir()
	r := openFollower(t, dir, paddr)
	waitReady(t, r.f)
	const q = `From item Retrieve name Order By name.`
	waitConverged(t, pdb, r.db, q)

	// Disconnect, let the ring evict many positions, reconnect.
	r.f.Close()
	for i := 2; i <= 30; i++ {
		mustExec(t, pdb, fmt.Sprintf(`Insert item (item-no := %d, name := "item %03d").`, i, i))
	}
	f2 := startFollower(t, r.db, dir, paddr)
	defer f2.Close()
	waitConverged(t, pdb, r.db, q)
	if pub.Latest() == 0 {
		t.Fatal("publisher lost its position")
	}
}

// TestSchemaChangeReplicates attaches a follower to an empty primary and
// defines the schema afterwards: the follower must reload its catalog
// from the replicated pages and serve rows inserted under the new schema.
func TestSchemaChangeReplicates(t *testing.T) {
	pdb, _, paddr := openPrimary(t, 0)
	dir := t.TempDir()
	r := openFollower(t, dir, paddr)
	defer r.f.Close()
	waitReady(t, r.f)

	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustExec(t, pdb, fmt.Sprintf(`Insert item (item-no := %d, name := "late %d").`, i+1, i))
	}
	waitConverged(t, pdb, r.db, `From item Retrieve name Order By name.`)
}

// TestReplStatusOverWire exercises the STATS-style status request through
// the client on both roles.
func TestReplStatusOverWire(t *testing.T) {
	pdb, _, paddr := openPrimary(t, 0)
	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	r := openFollower(t, dir, paddr)
	defer r.f.Close()
	waitReady(t, r.f)

	pc, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	st, err := pc.ReplStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" || len(st.Replicas) != 1 {
		t.Fatalf("primary ReplStatus: %+v", st)
	}
	rc, err := client.Dial(r.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	st, err = rc.ReplStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "replica" || len(st.Replicas) != 1 || st.Replicas[0].Addr != paddr {
		t.Fatalf("replica ReplStatus: %+v", st)
	}
}

// TestMultiClientSpraysReads routes reads through replicas and writes to
// the primary, and fails over to the primary when every replica is gone.
func TestMultiClientSpraysReads(t *testing.T) {
	pdb, _, paddr := openPrimary(t, 0)
	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	mustExec(t, pdb, `Insert item (item-no := 1, name := "one").`)

	dir1, dir2 := t.TempDir(), t.TempDir()
	r1 := openFollower(t, dir1, paddr)
	defer r1.f.Close()
	r2 := openFollower(t, dir2, paddr)
	defer r2.f.Close()
	waitReady(t, r1.f)
	waitReady(t, r2.f)
	const q = `From item Retrieve name Order By name.`
	waitConverged(t, pdb, r1.db, q)
	waitConverged(t, pdb, r2.db, q)

	m, err := client.DialMulti([]string{paddr, r1.addr, r2.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	want, _ := pdb.Query(q)
	for i := 0; i < 6; i++ {
		r, err := m.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Format() != want.Format() {
			t.Fatalf("multi read %d diverged", i)
		}
	}
	// Writes go to the primary even though replicas are in the pool.
	if _, err := m.Exec(`Insert item (item-no := 2, name := "two").`); err != nil {
		t.Fatalf("multi write: %v", err)
	}
	waitConverged(t, pdb, r1.db, q)
	waitConverged(t, pdb, r2.db, q)
	want, _ = pdb.Query(q)

	// Kill both replica servers: reads must fail over to the primary.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r1.srv.Shutdown(ctx)
	r2.srv.Shutdown(ctx)
	res, err := m.Query(q)
	if err != nil {
		t.Fatalf("failover to primary: %v", err)
	}
	if res.Format() != want.Format() {
		t.Fatal("failover read diverged")
	}
}
