package repl_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sim"
	"sim/client"
	"sim/internal/repl"
	"sim/internal/server"
	"sim/internal/wire"
)

const itemsQ = `From item Retrieve item-no, name Order By item-no.`

// primaryNode is a restartable primary: a file-backed database, its
// publisher under a ClaimEpoch'd term, and a server wired the way
// simserve wires one (durable epoch witness + rejoin-as-follower on
// fence). Restarting it on the same directory replays exactly what a
// crashed simserve process would find on disk.
type primaryNode struct {
	t    *testing.T
	dir  string
	db   *sim.Database
	pub  *repl.Publisher
	srv  *server.Server
	addr string

	mu       sync.Mutex
	follower *repl.Follower // set when a fence notice made this node rejoin
}

func (p *primaryNode) epochPath() string { return filepath.Join(p.dir, "primary.db.epoch") }

// startPrimaryNode opens (or reopens) the primary in dir. addr may be ""
// for a fresh listener or a previous address to rebind after a restart.
func startPrimaryNode(t *testing.T, dir, addr string) *primaryNode {
	t.Helper()
	p := &primaryNode{t: t, dir: dir}
	db, err := sim.Open(filepath.Join(dir, "primary.db"), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.db = db
	epoch, fencedBy, err := repl.ClaimEpoch(p.epochPath())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := repl.NewPublisher(db, repl.Config{Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	p.pub = pub
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p.addr = lis.Addr().String()
	p.srv = server.New(db, server.Config{
		Publisher:  pub,
		ReplStatus: pub.Status,
		FencedBy:   fencedBy,
		OnFence: func(epoch uint64, newPrimary string) {
			if err := repl.WitnessEpoch(p.epochPath(), epoch); err != nil {
				t.Errorf("witness epoch: %v", err)
			}
			if newPrimary == "" {
				return
			}
			p.mu.Lock()
			defer p.mu.Unlock()
			if p.follower != nil {
				if err := p.follower.Retarget(newPrimary); err == nil {
					return
				}
				p.follower = nil // closed; needs a fresh one
			}
			f, err := repl.StartFollower(p.db, filepath.Join(p.dir, "primary.db.repl"), repl.FollowerConfig{
				Primary:      newPrimary,
				Heartbeat:    50 * time.Millisecond,
				ReconnectMin: 10 * time.Millisecond,
				ReconnectMax: 200 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("rejoin after fence: %v", err)
				return
			}
			p.follower = f
		},
	})
	go p.srv.Serve(lis)
	t.Cleanup(func() { p.kill() })
	return p
}

// kill is kill -9: no drain, no goodbye. Safe to call twice.
func (p *primaryNode) kill() {
	p.srv.Close()
	p.mu.Lock()
	if p.follower != nil {
		p.follower.Close()
		p.follower = nil
	}
	p.mu.Unlock()
	p.db.Close()
}

// replicaNode is a follower with a promotable server in front of it,
// wired the way simserve wires one: promotion through the follower, and
// an OnFence hook that persists the witnessed epoch and rejoins the newer
// primary — replacing the follower when Promote already closed it.
type replicaNode struct {
	dir  string
	db   *sim.Database
	f    *repl.Follower
	srv  *server.Server
	addr string

	mu  sync.Mutex
	cur *repl.Follower // follower OnFence retargets or replaces; starts as f
}

func (r *replicaNode) epochPath() string { return filepath.Join(r.dir, "replica.db.epoch") }

func startReplicaNode(t *testing.T, primaryAddr string) *replicaNode {
	t.Helper()
	dir := t.TempDir()
	db, err := sim.Open(filepath.Join(dir, "replica.db"), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	f := startFollower(t, db, dir, primaryAddr)
	t.Cleanup(func() { f.Close() })
	r := &replicaNode{dir: dir, db: db, f: f, cur: f}
	t.Cleanup(func() {
		r.mu.Lock()
		cur := r.cur
		r.mu.Unlock()
		if cur != nil && cur != f {
			cur.Close()
		}
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r.addr = lis.Addr().String()
	r.srv = server.New(db, server.Config{
		ReadOnly:   true,
		ReplStatus: f.Status,
		Promote: func() (*repl.Publisher, error) {
			pr, err := f.Promote(repl.PromoteConfig{EpochPath: r.epochPath()})
			if err != nil {
				return nil, err
			}
			return pr.Pub, nil
		},
		Retarget: f.Retarget,
		OnFence: func(epoch uint64, newPrimary string) {
			if err := repl.WitnessEpoch(r.epochPath(), epoch); err != nil {
				t.Errorf("witness epoch: %v", err)
			}
			if newPrimary == "" {
				return
			}
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.cur != nil {
				if err := r.cur.Retarget(newPrimary); err == nil {
					return
				}
				r.cur = nil // closed by Promote; needs a fresh one
			}
			f2, err := repl.StartFollower(r.db, filepath.Join(dir, "replica.db.repl"), repl.FollowerConfig{
				Primary:      newPrimary,
				Heartbeat:    50 * time.Millisecond,
				ReconnectMin: 10 * time.Millisecond,
				ReconnectMax: 200 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("rejoin after fence: %v", err)
				return
			}
			r.cur = f2
		},
	})
	go r.srv.Serve(lis)
	t.Cleanup(func() { r.srv.Close() })
	return r
}

func dialClient(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.DialConfig(addr, client.Config{MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// wantFenced asserts an Exec against addr is refused with CodeFenced.
func wantFenced(t *testing.T, addr string) {
	t.Helper()
	c := dialClient(t, addr)
	_, err := c.Exec(`Insert item (item-no := 9999, name := "rogue").`)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeFenced {
		t.Fatalf("write on fenced node: err = %v, want CodeFenced", err)
	}
}

// TestFailoverChaosMatrix kills the primary at every commit boundary of a
// workload, promotes the follower, and asserts the acknowledged-commit
// guarantee: every commit the primary acknowledged while the follower was
// caught up is served byte-identically by the promoted node, the promoted
// node accepts new writes under a strictly higher epoch, the restarted
// old primary is fenced (immediately by the fencer, durably across its
// next restart), rejoins as a follower, and converges with clean storage.
func TestFailoverChaosMatrix(t *testing.T) {
	const commits = 4
	for k := 0; k <= commits; k++ {
		t.Run(fmt.Sprintf("kill-after-%d-commits", k), func(t *testing.T) {
			pdir := t.TempDir()
			p := startPrimaryNode(t, pdir, "")
			if err := p.db.DefineSchema(testSchema); err != nil {
				t.Fatal(err)
			}
			r := startReplicaNode(t, p.addr)
			waitReady(t, r.f)

			for i := 1; i <= k; i++ {
				mustExec(t, p.db, fmt.Sprintf(`Insert item (item-no := %d, name := "commit %d").`, i, i))
			}
			// The sync bound of the guarantee (DESIGN.md §14): the kill
			// lands at a boundary where the follower is caught up, so every
			// acknowledged commit is also shipped. Commits acknowledged but
			// unshipped are exercised by TestDivergedOldPrimaryRejoins.
			waitConverged(t, p.db, r.db, itemsQ)
			want, err := p.db.Query(itemsQ)
			if err != nil {
				t.Fatal(err)
			}
			oldEpoch := p.pub.Epoch()
			p.kill()

			// Promote the follower through the wire, as an operator would.
			rc := dialClient(t, r.addr)
			newEpoch, err := rc.Promote(context.Background())
			if err != nil {
				t.Fatalf("promote: %v", err)
			}
			if newEpoch <= oldEpoch {
				t.Fatalf("promoted epoch %d, want > %d", newEpoch, oldEpoch)
			}
			// Byte-identical acknowledged commits, before any new write.
			got, err := r.db.Query(itemsQ)
			if err != nil {
				t.Fatal(err)
			}
			if got.Format() != want.Format() {
				t.Fatalf("acknowledged commits lost at boundary %d:\nwant:\n%s\ngot:\n%s",
					k, want.Format(), got.Format())
			}
			// Promotion is idempotent and the new primary accepts writes.
			if again, err := rc.Promote(context.Background()); err != nil || again != newEpoch {
				t.Fatalf("re-promote: epoch %d err %v, want %d", again, err, newEpoch)
			}
			if _, err := rc.Exec(fmt.Sprintf(`Insert item (item-no := %d, name := "after failover").`, 1000+k)); err != nil {
				t.Fatalf("write on promoted node: %v", err)
			}

			// The old primary restarts on its old files. Until the fencer
			// reaches it, it is the split-brain risk; deliver the notice the
			// promoted node's RunFencer would deliver, then prove no write
			// can land there — now, and after yet another restart.
			p2 := startPrimaryNode(t, pdir, "")
			if err := repl.Fence(p2.addr, newEpoch, r.addr, 5*time.Second); err != nil {
				t.Fatalf("fence restarted primary: %v", err)
			}
			wantFenced(t, p2.addr)
			// The fence notice also told it where the new primary lives: it
			// rejoins as a follower, discarding any divergence via
			// re-snapshot, and converges on the post-failover state.
			waitConverged(t, r.db, p2.db, itemsQ)
			rep, err := p2.db.Scrub()
			if err != nil || !rep.OK() {
				t.Fatalf("rejoined old primary scrub: %v %v", err, rep)
			}
			addr2 := p2.addr
			p2.kill()

			// Durable fencing: a second restart finds the witnessed epoch in
			// the sidecar and starts fenced without anyone telling it again.
			p3 := startPrimaryNode(t, pdir, addr2)
			wantFenced(t, p3.addr)
			p3.kill()
		})
	}
}

// TestSplitBrainSingleWriter promotes the follower while the old primary
// is still alive and reachable — the worst case — and asserts exactly one
// side accepts writes once the fencing notice lands.
func TestSplitBrainSingleWriter(t *testing.T) {
	p := startPrimaryNode(t, t.TempDir(), "")
	if err := p.db.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	r := startReplicaNode(t, p.addr)
	waitReady(t, r.f)
	mustExec(t, p.db, `Insert item (item-no := 1, name := "before").`)
	waitConverged(t, p.db, r.db, itemsQ)

	rc := dialClient(t, r.addr)
	newEpoch, err := rc.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote with live primary: %v", err)
	}
	if err := repl.Fence(p.addr, newEpoch, r.addr, 5*time.Second); err != nil {
		t.Fatalf("fence live primary: %v", err)
	}

	// Exactly one writer: the old primary answers CodeFenced, the new one
	// commits.
	wantFenced(t, p.addr)
	if _, err := rc.Exec(`Insert item (item-no := 2, name := "after").`); err != nil {
		t.Fatalf("write on new primary: %v", err)
	}
	// A stale fencing notice (the old epoch) cannot demote the new primary.
	err = repl.Fence(r.addr, newEpoch, p.addr, 5*time.Second)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeFenced {
		t.Fatalf("stale fence on new primary: err = %v, want CodeFenced refusal", err)
	}
}

// TestPassiveFencing exercises the hello vector: a primary that receives
// a replication subscription claiming a higher epoch must conclude a
// newer primary exists and fence itself without any Retarget frame.
func TestPassiveFencing(t *testing.T) {
	p := startPrimaryNode(t, t.TempDir(), "")
	if err := p.db.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}

	nc, err := net.DialTimeout("tcp", p.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(nc, wire.THello, wire.EncodeHello()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(nc, 0); err != nil || typ != wire.THello {
		t.Fatalf("handshake: type %v err %v", typ, err)
	}
	hello := wire.ReplHello{Epoch: p.pub.Epoch() + 7, Run: 1, Pos: 3}
	if err := wire.WriteFrame(nc, wire.TReplHello, wire.EncodeReplHello(hello)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(nc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TError {
		t.Fatalf("higher-epoch hello answered %v, want TError", typ)
	}
	if e, derr := wire.DecodeError(payload); derr != nil || e.Code != wire.CodeFenced {
		t.Fatalf("higher-epoch hello error = %v (decode %v), want CodeFenced", e, derr)
	}
	wantFenced(t, p.addr)
}

// TestDivergedOldPrimaryRejoins covers the tail the guarantee excludes:
// commits the old primary acknowledged while its follower was
// disconnected exist nowhere else, the follower is promoted without them,
// and the old primary's rejoin discards them via re-snapshot rather than
// resurrecting a divergent history.
func TestDivergedOldPrimaryRejoins(t *testing.T) {
	pdir := t.TempDir()
	p := startPrimaryNode(t, pdir, "")
	if err := p.db.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	r := startReplicaNode(t, p.addr)
	waitReady(t, r.f)
	mustExec(t, p.db, `Insert item (item-no := 1, name := "shipped").`)
	waitConverged(t, p.db, r.db, itemsQ)

	// Cut replication, then commit a tail only the primary ever sees.
	r.f.Close()
	mustExec(t, p.db, `Insert item (item-no := 2, name := "diverged").`)
	mustExec(t, p.db, `Insert item (item-no := 3, name := "diverged too").`)
	p.kill()

	rc := dialClient(t, r.addr)
	newEpoch, err := rc.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if _, err := rc.Exec(`Insert item (item-no := 10, name := "new history").`); err != nil {
		t.Fatalf("write on promoted node: %v", err)
	}

	p2 := startPrimaryNode(t, pdir, "")
	// Before fencing, the restarted old primary still holds its diverged
	// tail — prove the rejoin actually discards something.
	if got, err := p2.db.Query(itemsQ); err != nil || got.NumRows() != 3 {
		t.Fatalf("restarted old primary rows = %v err %v, want the 3-row diverged history", got, err)
	}
	if err := repl.Fence(p2.addr, newEpoch, r.addr, 5*time.Second); err != nil {
		t.Fatalf("fence: %v", err)
	}
	waitConverged(t, r.db, p2.db, itemsQ)
	got, err := p2.db.Query(itemsQ)
	if err != nil {
		t.Fatal(err)
	}
	if s := got.Format(); strings.Contains(s, "diverged") {
		t.Fatalf("diverged commit survived the rejoin:\n%s", s)
	}
	if rep, err := p2.db.Scrub(); err != nil || !rep.OK() {
		t.Fatalf("scrub after rejoin: %v %v", err, rep)
	}
}

// TestDialMultiWriteFailover proves the client side of the failover
// story: the same Multi handle keeps writing after a promotion with no
// reconfiguration, while a transaction opened on the dead primary fails
// with ErrTxLost instead of silently moving.
func TestDialMultiWriteFailover(t *testing.T) {
	p := startPrimaryNode(t, t.TempDir(), "")
	if err := p.db.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	r := startReplicaNode(t, p.addr)
	waitReady(t, r.f)

	m, err := client.DialMulti([]string{p.addr, r.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Exec(`Insert item (item-no := 1, name := "before").`); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p.db, r.db, itemsQ)

	tx, err := m.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.kill()
	rc := dialClient(t, r.addr)
	if _, err := rc.Promote(context.Background()); err != nil {
		t.Fatalf("promote: %v", err)
	}

	// The open transaction was pinned to the dead primary: fatal, never
	// redirected (the server may have applied statements before dying).
	if _, err := tx.Exec(context.Background(), `Insert item (item-no := 99, name := "lost").`); !errors.Is(err, client.ErrTxLost) {
		t.Fatalf("tx on dead primary: err = %v, want ErrTxLost", err)
	}
	// A plain write re-probes the topology, adopts the promoted node, and
	// lands — same handle, no reconfiguration.
	if _, err := m.Exec(`Insert item (item-no := 2, name := "after failover").`); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	got, err := r.db.Query(itemsQ)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("promoted node rows = %d, want 2:\n%s", got.NumRows(), got.Format())
	}
	// A fresh transaction follows the promotion too.
	tx2, err := m.Begin(context.Background())
	if err != nil {
		t.Fatalf("begin after failover: %v", err)
	}
	if _, err := tx2.Exec(context.Background(), `Insert item (item-no := 3, name := "txn after failover").`); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Reads keep flowing through the same handle as well.
	if _, err := m.Query(itemsQ); err != nil {
		t.Fatalf("read after failover: %v", err)
	}
}

// TestMultiHealthEjection kills a replica under a Multi and asserts reads
// keep succeeding (failing over past the dead node), then revives the
// replica and asserts the background probe re-admits it to the rotation.
func TestMultiHealthEjection(t *testing.T) {
	p := startPrimaryNode(t, t.TempDir(), "")
	if err := p.db.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	r := startReplicaNode(t, p.addr)
	waitReady(t, r.f)
	mustExec(t, p.db, `Insert item (item-no := 1, name := "one").`)
	waitConverged(t, p.db, r.db, itemsQ)

	m, err := client.DialMulti([]string{p.addr, r.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Replica down: every read still succeeds, served by the primary.
	r.srv.Close()
	for i := 0; i < 6; i++ {
		if _, err := m.Query(itemsQ); err != nil {
			t.Fatalf("read %d with dead replica: %v", i, err)
		}
	}

	// Revive the replica on its old address; the ejected node's probe
	// must re-admit it, after which reads land there again.
	lis, err := net.Listen("tcp", r.addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(r.db, server.Config{ReadOnly: true, ReplStatus: r.f.Status})
	go srv2.Serve(lis)
	t.Cleanup(func() { srv2.Close() })

	probe := dialClient(t, r.addr)
	base, err := probe.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := m.Query(itemsQ); err != nil {
			t.Fatalf("read during re-admission: %v", err)
		}
		st, err := probe.ServerStats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Each loop adds one request of our own (the stats call); anything
		// beyond that means the Multi's traffic reaches the replica again.
		if st.Requests >= base.Requests+2 {
			break
		}
		base = st // our own probe traffic moves the floor
		if time.Now().After(deadline) {
			t.Fatal("revived replica never re-admitted to the read rotation")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRepromoteAfterFenceRefused pins the resurrection hazard: a node
// promoted to epoch E and then fenced by E' > E must not re-open writes
// at E when the (idempotent) promotion is retried — the cached publisher
// is sealed, its epoch is stale, and anything it accepted would
// replicate nowhere.
func TestRepromoteAfterFenceRefused(t *testing.T) {
	p := startPrimaryNode(t, t.TempDir(), "")
	if err := p.db.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	r := startReplicaNode(t, p.addr)
	waitReady(t, r.f)
	mustExec(t, p.db, `Insert item (item-no := 1, name := "before").`)
	waitConverged(t, p.db, r.db, itemsQ)
	p.kill()

	rc := dialClient(t, r.addr)
	newEpoch, err := rc.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	// A second failover elsewhere fences the promoted node at a higher
	// epoch; the notice carries no rejoin address.
	if err := repl.Fence(r.addr, newEpoch+1, "", 5*time.Second); err != nil {
		t.Fatalf("fence promoted node: %v", err)
	}
	wantFenced(t, r.addr)
	// The retried promotion answers CodeFenced instead of resurrecting the
	// stale epoch, and the node stays fenced.
	_, err = rc.Promote(context.Background())
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeFenced {
		t.Fatalf("re-promote on fenced node: err = %v, want CodeFenced", err)
	}
	wantFenced(t, r.addr)
}

// TestPromotedReplicaFencedRejoins drives the second failover end to end:
// a replica promoted to primary is itself fenced by an even higher epoch.
// It must persist the witnessed epoch in its own sidecar, and — because
// its original follower was closed by Promote — rejoin the newer primary
// with a fresh follower, discarding its post-promotion history via
// re-snapshot.
func TestPromotedReplicaFencedRejoins(t *testing.T) {
	p := startPrimaryNode(t, t.TempDir(), "")
	if err := p.db.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	r := startReplicaNode(t, p.addr)
	waitReady(t, r.f)
	mustExec(t, p.db, `Insert item (item-no := 1, name := "shared").`)
	waitConverged(t, p.db, r.db, itemsQ)
	p.kill()

	rc := dialClient(t, r.addr)
	newEpoch, err := rc.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	// History only the short-lived second primary ever sees.
	if _, err := rc.Exec(`Insert item (item-no := 2, name := "doomed").`); err != nil {
		t.Fatalf("write on promoted node: %v", err)
	}

	// A newer primary appears at a strictly higher epoch and fences the
	// promoted node, naming itself as the rejoin target.
	p2dir := t.TempDir()
	if err := repl.AdvanceEpoch(filepath.Join(p2dir, "primary.db.epoch"), newEpoch+1); err != nil {
		t.Fatal(err)
	}
	p2 := startPrimaryNode(t, p2dir, "")
	if err := p2.db.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	mustExec(t, p2.db, `Insert item (item-no := 1, name := "shared").`)
	mustExec(t, p2.db, `Insert item (item-no := 3, name := "newest history").`)
	if err := repl.Fence(r.addr, newEpoch+1, p2.addr, 5*time.Second); err != nil {
		t.Fatalf("fence promoted node: %v", err)
	}
	wantFenced(t, r.addr)
	// Durable witness: the replica's own sidecar records the higher epoch.
	if ne := repl.LoadNodeEpoch(r.epochPath()); ne.MaxSeen < newEpoch+1 {
		t.Fatalf("sidecar MaxSeen = %d after fence, want >= %d", ne.MaxSeen, newEpoch+1)
	}
	// The fenced ex-primary converges on the newer primary's history; its
	// own "doomed" tail is discarded by the re-snapshot.
	waitConverged(t, p2.db, r.db, itemsQ)
	got, err := r.db.Query(itemsQ)
	if err != nil {
		t.Fatal(err)
	}
	if s := got.Format(); strings.Contains(s, "doomed") {
		t.Fatalf("post-promotion commit survived the second failover:\n%s", s)
	}
}

// TestRetargetClosedFollower pins the contract the rejoin path relies on:
// a closed follower has no reconnect loop left, so Retarget must error —
// callers start a fresh follower instead of logging a no-op.
func TestRetargetClosedFollower(t *testing.T) {
	dir := t.TempDir()
	db, err := sim.Open(filepath.Join(dir, "replica.db"), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	f, err := repl.StartFollower(db, filepath.Join(dir, "replica.db.repl"), repl.FollowerConfig{
		Primary:      "127.0.0.1:1",
		ReconnectMin: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Retarget("127.0.0.1:2"); err != nil {
		t.Fatalf("retarget live follower: %v", err)
	}
	f.Close()
	if err := f.Retarget("127.0.0.1:3"); err == nil {
		t.Fatal("retarget on a closed follower succeeded; want an error")
	}
}

// TestEpochSidecar pins the ClaimEpoch/WitnessEpoch/AdvanceEpoch
// lifecycle the failover protocol is built on.
func TestEpochSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.epoch")
	epoch, fencedBy, err := repl.ClaimEpoch(path)
	if err != nil || epoch != 1 || fencedBy != 0 {
		t.Fatalf("fresh claim = (%d, %d, %v), want (1, 0, nil)", epoch, fencedBy, err)
	}
	// A plain restart keeps the term: epochs advance on promotion only.
	if epoch, fencedBy, err = repl.ClaimEpoch(path); err != nil || epoch != 1 || fencedBy != 0 {
		t.Fatalf("re-claim = (%d, %d, %v), want (1, 0, nil)", epoch, fencedBy, err)
	}
	if err := repl.WitnessEpoch(path, 5); err != nil {
		t.Fatal(err)
	}
	// Witnessing a higher term makes every later claim start fenced.
	if epoch, fencedBy, err = repl.ClaimEpoch(path); err != nil || epoch != 1 || fencedBy != 5 {
		t.Fatalf("claim after witness = (%d, %d, %v), want (1, 5, nil)", epoch, fencedBy, err)
	}
	// Witnessing a lower term than already seen is a no-op.
	if err := repl.WitnessEpoch(path, 3); err != nil {
		t.Fatal(err)
	}
	if ne := repl.LoadNodeEpoch(path); ne.MaxSeen != 5 {
		t.Fatalf("MaxSeen = %d after lower witness, want 5", ne.MaxSeen)
	}
	// Promotion advances past everything witnessed.
	if err := repl.AdvanceEpoch(path, 6); err != nil {
		t.Fatal(err)
	}
	if epoch, fencedBy, err = repl.ClaimEpoch(path); err != nil || epoch != 6 || fencedBy != 0 {
		t.Fatalf("claim after advance = (%d, %d, %v), want (6, 0, nil)", epoch, fencedBy, err)
	}
}
