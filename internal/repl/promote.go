package repl

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"time"

	"sim/internal/wire"
)

// PromoteConfig tunes Follower.Promote.
type PromoteConfig struct {
	// EpochPath is where the advanced epoch is persisted (see
	// ClaimEpoch). Required: promotion without a durable epoch could
	// resurrect at a stale term after a crash.
	EpochPath string
	// RingBytes sizes the new publisher's retained tail (default
	// DefaultRingBytes).
	RingBytes int
}

// Promotion is the result of promoting a follower: the publisher the new
// primary serves replication from, the epoch it owns, the position the
// apply state was sealed at, and the old primary's address (for fencing).
type Promotion struct {
	Pub        *Publisher
	Epoch      uint64
	Pos        uint64
	OldPrimary string
}

// Promote turns this follower into a primary: stop the stream and drain
// any in-flight apply, seal the apply state at its last durable position,
// persist a strictly higher epoch, and open a Publisher under it. The
// follower is closed afterwards; calling Promote again returns the same
// Promotion.
//
// Everything the old primary acknowledged AND shipped is present at the
// sealed position. Commits the old primary acknowledged but had not yet
// shipped (replication is asynchronous) are not — they exist only on the
// old primary, which the new epoch fences, and are discarded when it
// rejoins via re-snapshot. See DESIGN.md §14 for the exact guarantee.
func (f *Follower) Promote(cfg PromoteConfig) (*Promotion, error) {
	f.promoteMu.Lock()
	defer f.promoteMu.Unlock()
	if f.promoted != nil {
		return f.promoted, nil
	}
	if cfg.EpochPath == "" {
		return nil, fmt.Errorf("repl: promote needs an epoch path")
	}
	oldPrimary := f.Primary()
	f.Close() // cut the stream, wait out the apply loop: the state is sealed
	st := f.a.State()
	if st.Epoch == 0 {
		return nil, fmt.Errorf("repl: refusing to promote a follower that never reached its primary")
	}
	// Strictly above both the epoch we followed and anything this node has
	// ever witnessed, and durable before the first group is published.
	newEpoch := st.Epoch
	if ne := LoadNodeEpoch(cfg.EpochPath); ne.MaxSeen > newEpoch {
		newEpoch = ne.MaxSeen
	}
	newEpoch++
	if err := AdvanceEpoch(cfg.EpochPath, newEpoch); err != nil {
		return nil, err
	}
	pub, err := NewPublisher(f.db, Config{RingBytes: cfg.RingBytes, Epoch: newEpoch})
	if err != nil {
		return nil, err
	}
	f.cfg.Logger.Info("promoted to primary",
		"epoch", newEpoch, "sealed_pos", st.Pos, "old_primary", oldPrimary)
	f.promoted = &Promotion{Pub: pub, Epoch: newEpoch, Pos: st.Pos, OldPrimary: oldPrimary}
	return f.promoted, nil
}

// Fence dials addr and delivers a fencing notice: "epoch exists, the
// primary for it serves at newAddr". A primary receiving a higher epoch
// demotes itself to read-only (and rejoins newAddr as a follower when
// given one); a replica re-targets its stream. The call returns nil once
// the target acknowledged the notice, a *wire.Error if it refused
// (definitive — do not retry), and a transport error when it could not be
// reached (retry; the target may still be restarting).
func Fence(addr string, epoch uint64, newAddr string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(nc, wire.THello, wire.EncodeHello()); err != nil {
		return err
	}
	t, payload, err := wire.ReadFrame(nc, 0)
	if err != nil {
		return err
	}
	if t != wire.THello {
		return fmt.Errorf("repl: fence handshake got %v, want Hello", t)
	}
	if _, err := wire.DecodeHello(payload); err != nil {
		return err
	}
	if err := wire.WriteFrame(nc, wire.TRetarget, wire.EncodeRetarget(wire.Retarget{Epoch: epoch, Addr: newAddr})); err != nil {
		return err
	}
	t, payload, err = wire.ReadFrame(nc, 0)
	if err != nil {
		return err
	}
	switch t {
	case wire.TOK:
		return nil
	case wire.TError:
		if e, derr := wire.DecodeError(payload); derr == nil {
			return e
		}
		return fmt.Errorf("repl: fence refused with an undecodable error")
	default:
		return fmt.Errorf("repl: fence got %v, want OK", t)
	}
}

// RunFencer keeps delivering the fencing notice to the old primary until
// it is acknowledged, it is definitively refused, or stop closes. A new
// primary starts one right after promotion: the old primary is usually
// dead at that moment, but if (or when) it comes back, the fencer is what
// actively demotes it instead of waiting for it to stumble into the new
// epoch on its own.
func RunFencer(stop <-chan struct{}, addr string, epoch uint64, newAddr string, logger *slog.Logger) {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	backoff := 100 * time.Millisecond
	for {
		err := Fence(addr, epoch, newAddr, 5*time.Second)
		if err == nil {
			logger.Info("old primary fenced", "addr", addr, "epoch", epoch)
			return
		}
		var we *wire.Error
		if errors.As(err, &we) {
			// The target answered: it is either already fenced or holds a
			// higher epoch than ours. Retrying cannot change its mind.
			logger.Warn("fence refused", "addr", addr, "epoch", epoch, "err", err)
			return
		}
		select {
		case <-stop:
			return
		case <-time.After(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}
