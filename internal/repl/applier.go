package repl

import (
	"fmt"
	"sync"

	"sim"
	"sim/internal/pager"
	"sim/internal/wire"
)

// Applier installs replicated groups and snapshots into a follower's
// database, tracking the durable position in a sidecar State file. It is
// the crash-safe core of the follower, separated from the networking so
// the fault harness can drive it directly against scripted storage.
//
// Crash safety, window by window: ApplyGroup journals the group through
// the replica's own WAL (Store.ApplyReplicated) before the sidecar is
// rewritten, so a crash before the save resumes at the previous position
// and re-receives a group the database may already contain — harmless,
// because page-image application is idempotent. A crash mid-snapshot is
// covered by invalidating the sidecar before the image is installed:
// restart finds position 0 and requests a fresh snapshot instead of
// trusting a half-written file.
type Applier struct {
	db        *sim.Database
	statePath string

	mu  sync.Mutex
	st  State
	gen uint64 // schema generation the database currently holds
}

// NewApplier wraps db with replication apply state persisted at
// statePath. A missing or corrupt sidecar yields position 0, which makes
// the follower request a snapshot.
func NewApplier(db *sim.Database, statePath string) *Applier {
	return &Applier{
		db:        db,
		statePath: statePath,
		st:        LoadState(statePath),
		gen:       db.SchemaGen(),
	}
}

// State returns the durable replication position.
func (a *Applier) State() State {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st
}

// Pos returns the durable applied position.
func (a *Applier) Pos() uint64 { return a.State().Pos }

// ApplySnapshot atomically replaces the database with a base image that
// is current as of pos within (epoch, run).
func (a *Applier) ApplySnapshot(epoch, run, pos uint64, img []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Invalidate the sidecar first: once the install starts, the old
	// position describes a database that no longer exists.
	if err := SaveState(a.statePath, State{}); err != nil {
		return err
	}
	a.st = State{}
	if err := a.db.ApplySnapshot(img); err != nil {
		return err
	}
	a.st = State{Epoch: epoch, Run: run, Pos: pos}
	a.gen = a.db.SchemaGen()
	return SaveState(a.statePath, a.st)
}

// ApplyGroup applies one replicated commit group. Groups at or before
// the applied position are skipped (idempotent redelivery after a
// resume); a gap, an epoch change, or a publisher-run change is an
// error — the follower reconnects and lets the primary decide between
// tail and snapshot.
func (a *Applier) ApplyGroup(f wire.ReplFrames) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if f.Epoch != a.st.Epoch || f.Run != a.st.Run {
		return fmt.Errorf("repl: group from epoch %d run %d, following epoch %d run %d",
			f.Epoch, f.Run, a.st.Epoch, a.st.Run)
	}
	if f.Pos <= a.st.Pos {
		return nil
	}
	if f.Pos != a.st.Pos+1 {
		return fmt.Errorf("repl: group gap: have %d, got %d", a.st.Pos, f.Pos)
	}
	pages := make([]pager.PageImage, len(f.Pages))
	for i, pg := range f.Pages {
		pages[i] = pager.PageImage{ID: pager.PageID(pg.ID), Data: pg.Data}
	}
	if err := a.db.ApplyReplicated(pages, f.Gen != a.gen); err != nil {
		return err
	}
	a.st.Pos = f.Pos
	a.gen = f.Gen
	return SaveState(a.statePath, a.st)
}
