package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// NodeEpoch is a node's durable fencing term, persisted in a sidecar next
// to the database file. Epoch is the term the node publishes under when it
// is (or becomes) a primary; it advances only on promotion, never on a
// plain restart, so a crashed-and-restarted primary comes back with the
// same epoch and is strictly below any follower promoted in its absence.
// MaxSeen records the highest epoch the node has ever witnessed (its own,
// or a higher one learned through fencing); MaxSeen > Epoch means the node
// was fenced and must not accept writes until an operator re-points or
// re-seeds it.
type NodeEpoch struct {
	Epoch   uint64
	MaxSeen uint64
}

// epochMagic opens the epoch sidecar file.
const epochMagic = "SIMF"

// epochSize is the sidecar length: magic(4) epoch(8) maxseen(8) crc32(4).
const epochSize = 24

// SaveNodeEpoch durably writes the epoch sidecar at path.
func SaveNodeEpoch(path string, ne NodeEpoch) error {
	var buf [epochSize]byte
	copy(buf[:4], epochMagic)
	binary.BigEndian.PutUint64(buf[4:12], ne.Epoch)
	binary.BigEndian.PutUint64(buf[12:20], ne.MaxSeen)
	binary.BigEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(buf[:20]))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadNodeEpoch reads the epoch sidecar at path. A missing, short, or
// corrupt file yields the zero NodeEpoch: the node then claims epoch 1,
// which is safe for a fresh cluster and conservative for a damaged one
// (any promoted follower is at least at 2).
func LoadNodeEpoch(path string) NodeEpoch {
	b, err := os.ReadFile(path)
	if err != nil || len(b) != epochSize || string(b[:4]) != epochMagic {
		return NodeEpoch{}
	}
	if crc32.ChecksumIEEE(b[:20]) != binary.BigEndian.Uint32(b[20:24]) {
		return NodeEpoch{}
	}
	return NodeEpoch{
		Epoch:   binary.BigEndian.Uint64(b[4:12]),
		MaxSeen: binary.BigEndian.Uint64(b[12:20]),
	}
}

// ClaimEpoch loads (or initializes) the epoch a primary publishes under.
// A fresh sidecar claims epoch 1. The epoch is NOT advanced on restart —
// only promotion advances it — so the returned value is stable across
// crashes. fencedBy is non-zero when the sidecar has witnessed a higher
// epoch than the node's own: the caller must start fenced (read-only)
// rather than accept writes a newer primary will never see.
func ClaimEpoch(path string) (epoch, fencedBy uint64, err error) {
	ne := LoadNodeEpoch(path)
	if ne.Epoch == 0 {
		ne = NodeEpoch{Epoch: 1, MaxSeen: 1}
		if err := SaveNodeEpoch(path, ne); err != nil {
			return 0, 0, fmt.Errorf("repl: claim epoch: %w", err)
		}
	}
	if ne.MaxSeen > ne.Epoch {
		return ne.Epoch, ne.MaxSeen, nil
	}
	return ne.Epoch, 0, nil
}

// AdvanceEpoch durably records a promotion: the node now owns epoch, and
// epoch is the highest it has seen. It must be persisted before the new
// primary publishes anything, so a crash mid-promotion cannot resurrect
// the node at its old term.
func AdvanceEpoch(path string, epoch uint64) error {
	if err := SaveNodeEpoch(path, NodeEpoch{Epoch: epoch, MaxSeen: epoch}); err != nil {
		return fmt.Errorf("repl: advance epoch: %w", err)
	}
	return nil
}

// WitnessEpoch durably records that a higher epoch exists. A fenced
// primary calls it so that even after a restart it comes back fenced
// instead of re-claiming its stale term.
func WitnessEpoch(path string, seen uint64) error {
	ne := LoadNodeEpoch(path)
	if seen <= ne.MaxSeen {
		return nil
	}
	ne.MaxSeen = seen
	if err := SaveNodeEpoch(path, ne); err != nil {
		return fmt.Errorf("repl: witness epoch: %w", err)
	}
	return nil
}
