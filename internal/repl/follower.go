package repl

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sim"
	"sim/internal/obs"
	"sim/internal/wire"
)

// FollowerConfig tunes a Follower. Primary is required; the rest default
// sensibly for LAN replication.
type FollowerConfig struct {
	// Primary is the host:port of the primary simserve.
	Primary string
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// Heartbeat is the primary's expected heartbeat interval; the read
	// deadline is derived from it (default 1s, deadline 4x with a 10s
	// floor).
	Heartbeat time.Duration
	// ReconnectMin/ReconnectMax bound the exponential reconnect backoff
	// (defaults 100ms / 5s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Logger receives stream-level diagnostics. Nil discards them.
	Logger *slog.Logger
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 100 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// readDeadline is how long the follower waits for any frame before
// declaring the stream dead; heartbeats arrive every Heartbeat while the
// primary is idle.
func (c FollowerConfig) readDeadline() time.Duration {
	d := 4 * c.Heartbeat
	if d < 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// Follower maintains a replication stream from a primary into a local
// read-only database: dial, subscribe from the Applier's durable
// position, apply snapshots and groups as they arrive, acknowledge
// progress, and reconnect with backoff forever (until Close).
type Follower struct {
	db  *sim.Database
	a   *Applier
	cfg FollowerConfig

	mu      sync.Mutex
	primary string // current upstream address; changes via Retarget
	nc      net.Conn
	state   string // connecting | snapshot | streaming
	latest  uint64 // primary's newest position, from frames/heartbeats
	lastAct time.Time

	quit      chan struct{}
	quitOnce  sync.Once
	wg        sync.WaitGroup
	ready     chan struct{}
	readyOnce sync.Once

	promoteMu sync.Mutex
	promoted  *Promotion

	groupsApplied atomic.Uint64
	snapshotsIn   atomic.Uint64
	reconnects    atomic.Uint64

	staleness obs.Histogram                  // publish-to-apply delay per group
	flight    atomic.Pointer[obs.FlightRing] // snapshot/apply events
}

// StartFollower begins replicating db from cfg.Primary, persisting apply
// state at statePath. The returned Follower runs until Close.
func StartFollower(db *sim.Database, statePath string, cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("repl: follower needs a primary address")
	}
	f := &Follower{
		db:      db,
		a:       NewApplier(db, statePath),
		cfg:     cfg.withDefaults(),
		primary: cfg.Primary,
		state:   "connecting",
		lastAct: time.Now(),
		quit:    make(chan struct{}),
		ready:   make(chan struct{}),
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Close stops the stream and waits for the replication goroutine.
func (f *Follower) Close() error {
	f.quitOnce.Do(func() { close(f.quit) })
	f.mu.Lock()
	if f.nc != nil {
		f.nc.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}

// Primary returns the address the follower currently replicates from.
func (f *Follower) Primary() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primary
}

// Retarget re-points the follower at a new primary address at runtime —
// the rejoin path after a failover. The current stream is cut; the
// reconnect loop dials the new address, and the normal subscribe rules
// decide between tail resume and re-snapshot. A closed follower (Close
// or Promote) has no reconnect loop left to dial anything: Retarget
// errors so the caller knows to start a fresh follower instead of
// logging a retarget that never happens.
func (f *Follower) Retarget(addr string) error {
	if addr == "" {
		return fmt.Errorf("repl: retarget needs a primary address")
	}
	select {
	case <-f.quit:
		return fmt.Errorf("repl: follower is closed; start a new one instead of retargeting")
	default:
	}
	f.mu.Lock()
	old := f.primary
	f.primary = addr
	nc := f.nc
	f.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
	f.cfg.Logger.Info("replication retargeted", "old", old, "new", addr)
	return nil
}

// WaitReady blocks until the follower has caught up with the primary's
// position at least once (applied ≥ latest as reported by the stream).
func (f *Follower) WaitReady(ctx interface{ Done() <-chan struct{} }) error {
	select {
	case <-f.ready:
		return nil
	case <-f.quit:
		return fmt.Errorf("repl: follower closed")
	case <-ctx.Done():
		return fmt.Errorf("repl: follower not caught up")
	}
}

// Ready reports whether the follower can serve bounded-staleness reads:
// it has caught up with the primary at least once (snapshot installed,
// stream drained) AND its current lag is within maxLag groups. It backs
// the /readyz endpoint on replica simserves.
func (f *Follower) Ready(maxLag uint64) bool {
	select {
	case <-f.ready:
	default:
		return false
	}
	pos := f.a.Pos()
	f.mu.Lock()
	latest := f.latest
	f.mu.Unlock()
	return latest <= pos+maxLag
}

// Status reports the follower's replication state: one ReplicaInfo
// describing its own progress against the primary.
func (f *Follower) Status() wire.ReplStatus {
	st := f.a.State()
	f.mu.Lock()
	primary, state, latest, last := f.primary, f.state, f.latest, f.lastAct
	f.mu.Unlock()
	return wire.ReplStatus{
		Role:   "replica",
		Epoch:  st.Epoch,
		Latest: latest,
		Replicas: []wire.ReplicaInfo{{
			Addr:   primary,
			State:  state,
			Pos:    st.Pos,
			Latest: latest,
			AgeMs:  uint64(time.Since(last).Milliseconds()),
		}},
	}
}

// RegisterMetrics publishes the follower-side replication counters.
func (f *Follower) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("sim_repl_epoch", "Replication epoch this node follows (advances on promotion).",
		func() float64 { return float64(f.a.State().Epoch) })
	r.GaugeFunc("sim_repl_applied_pos", "Last replication position durably applied.",
		func() float64 { return float64(f.a.Pos()) })
	r.GaugeFunc("sim_repl_primary_pos", "Primary's newest position as last reported on the stream.",
		func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(f.latest)
		})
	r.GaugeFunc("sim_repl_lag_groups", "Commit groups the follower is behind the primary.",
		func() float64 {
			pos := f.a.Pos()
			f.mu.Lock()
			latest := f.latest
			f.mu.Unlock()
			if latest < pos {
				return 0
			}
			return float64(latest - pos)
		})
	r.GaugeFunc("sim_repl_connected", "1 while the replication stream is established, else 0.",
		func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			if f.state == "streaming" || f.state == "snapshot" {
				return 1
			}
			return 0
		})
	r.CounterFunc("sim_repl_groups_applied_total", "Replicated commit groups applied.",
		func() float64 { return float64(f.groupsApplied.Load()) })
	r.CounterFunc("sim_repl_snapshots_installed_total", "Base snapshots installed.",
		func() float64 { return float64(f.snapshotsIn.Load()) })
	r.CounterFunc("sim_repl_reconnects_total", "Stream reconnect attempts after a failure.",
		func() float64 { return float64(f.reconnects.Load()) })
	r.HistogramVar(&f.staleness, "sim_repl_staleness_seconds",
		"Publish-to-apply delay of replicated groups (follower clock minus the primary's publish stamp).")
	r.OnReset(func() {
		f.groupsApplied.Store(0)
		f.snapshotsIn.Store(0)
		f.reconnects.Store(0)
	})
	f.flight.Store(r.Flight().Component("repl"))
}

// run is the reconnect loop.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.cfg.ReconnectMin
	for {
		select {
		case <-f.quit:
			return
		default:
		}
		start := time.Now()
		err := f.stream()
		select {
		case <-f.quit:
			return
		default:
		}
		f.setState("connecting")
		f.cfg.Logger.Warn("replication stream ended", "primary", f.Primary(), "err", err)
		f.reconnects.Add(1)
		if time.Since(start) > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMin // the stream was healthy for a while
		}
		// Full jitter over [backoff/2, backoff]: after a failover every
		// follower of the dead primary redials at once, and without jitter
		// their exponential schedules stay synchronized — each retry slams
		// the promoted primary as one thundering herd.
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-f.quit:
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
	}
}

// stream runs one connection: handshake, subscribe, apply until error.
func (f *Follower) stream() error {
	primary := f.Primary()
	nc, err := net.DialTimeout("tcp", primary, f.cfg.DialTimeout)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.nc = nc
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.nc = nil
		f.mu.Unlock()
		nc.Close()
	}()

	// Standard Hello exchange, then the replication subscribe.
	nc.SetDeadline(time.Now().Add(f.cfg.DialTimeout))
	if err := wire.WriteFrame(nc, wire.THello, wire.EncodeHello()); err != nil {
		return err
	}
	t, payload, err := wire.ReadFrame(nc, 0)
	if err != nil {
		return err
	}
	if t == wire.TError {
		if e, derr := wire.DecodeError(payload); derr == nil {
			return e
		}
		return fmt.Errorf("repl: handshake refused")
	}
	if t != wire.THello {
		return fmt.Errorf("repl: handshake got %v, want Hello", t)
	}
	if _, err := wire.DecodeHello(payload); err != nil {
		return err
	}
	nc.SetDeadline(time.Time{})
	st := f.a.State()
	if err := wire.WriteFrame(nc, wire.TReplHello, wire.EncodeReplHello(wire.ReplHello{Epoch: st.Epoch, Run: st.Run, Pos: st.Pos})); err != nil {
		return err
	}
	f.cfg.Logger.Info("replication stream open", "primary", primary,
		"epoch", st.Epoch, "pos", st.Pos)

	var rbuf []byte
	var snap []byte // accumulating base image, nil outside a snapshot
	for {
		select {
		case <-f.quit:
			return nil
		default:
		}
		nc.SetReadDeadline(time.Now().Add(f.cfg.readDeadline()))
		t, payload, err := wire.ReadFrameBuf(nc, 0, rbuf)
		if err != nil {
			return err
		}
		if cap(payload) > cap(rbuf) {
			rbuf = payload[:cap(payload)]
		}
		switch t {
		case wire.TReplSnapshot:
			s, err := wire.DecodeReplSnapshot(payload)
			if err != nil {
				return err
			}
			if s.Offset == 0 {
				f.setState("snapshot")
				snap = make([]byte, 0, s.Total)
			}
			if snap == nil || uint64(len(snap)) != s.Offset {
				return fmt.Errorf("repl: snapshot chunk at %d, have %d bytes", s.Offset, len(snap))
			}
			snap = append(snap, s.Chunk...)
			if uint64(len(snap)) < s.Total {
				continue
			}
			if err := f.a.ApplySnapshot(s.Epoch, s.Run, s.Pos, snap); err != nil {
				return err
			}
			snap = nil
			f.snapshotsIn.Add(1)
			f.setState("streaming")
			f.flight.Load().Record(obs.FlightEvent{Comp: "repl", Kind: "snapshot", Pos: s.Pos, N: int64(s.Total)})
			f.observe(s.Pos)
			if err := f.ack(nc, s.Pos); err != nil {
				return err
			}
			f.cfg.Logger.Info("snapshot installed", "primary", primary, "pos", s.Pos, "bytes", s.Total)
		case wire.TReplFrames:
			fr, err := wire.DecodeReplFrames(payload)
			if err != nil {
				return err
			}
			if fr.Pos == 0 { // heartbeat
				f.setState("streaming")
				f.observe(fr.Latest)
				if err := f.ack(nc, f.a.Pos()); err != nil {
					return err
				}
				continue
			}
			applyStart := time.Now()
			if err := f.a.ApplyGroup(fr); err != nil {
				return err
			}
			f.groupsApplied.Add(1)
			if fr.TS != 0 {
				if d := time.Since(time.Unix(0, int64(fr.TS))); d > 0 {
					f.staleness.Observe(d)
				}
			}
			// One apply event per request ID the group carried, so a trace
			// ID minted on the client is findable in this follower's flight
			// recorder; ID-less groups record a single anonymous event.
			ids := fr.IDs
			if len(ids) == 0 {
				ids = []uint64{0}
			}
			for _, id := range ids {
				f.flight.Load().Record(obs.FlightEvent{Comp: "repl", Kind: "apply", ID: id,
					Pos: fr.Pos, Dur: time.Since(applyStart), N: int64(len(fr.Pages))})
			}
			f.observe(fr.Latest)
			if err := f.ack(nc, fr.Pos); err != nil {
				return err
			}
		case wire.TError:
			if e, derr := wire.DecodeError(payload); derr == nil {
				return e
			}
			return fmt.Errorf("repl: primary sent an undecodable error frame")
		default:
			return fmt.Errorf("repl: unexpected frame %v on replication stream", t)
		}
	}
}

// observe records the primary's newest position and signals readiness
// once the applied position has reached it.
func (f *Follower) observe(latest uint64) {
	f.mu.Lock()
	if latest > f.latest {
		f.latest = latest
	}
	caught := f.a.Pos() >= f.latest
	f.lastAct = time.Now()
	f.mu.Unlock()
	if caught {
		f.readyOnce.Do(func() { close(f.ready) })
	}
}

func (f *Follower) setState(state string) {
	f.mu.Lock()
	f.state = state
	f.mu.Unlock()
}

// ack reports the applied position; acknowledgments are advisory (lag
// accounting on the primary), never required for commit.
func (f *Follower) ack(nc net.Conn, pos uint64) error {
	nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	defer nc.SetWriteDeadline(time.Time{})
	return wire.WriteFrame(nc, wire.TReplAck, wire.EncodeReplAck(pos))
}
