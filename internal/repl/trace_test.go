package repl_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sim"
	"sim/client"
	"sim/internal/repl"
)

// TestRequestTraceEndToEnd is the tracing acceptance path: one client-
// minted request ID must be returned in the commit's span breakdown and
// then be findable in the flight recorders of BOTH processes — the
// primary (txn/wal events) and the follower that applied the replicated
// commit group.
func TestRequestTraceEndToEnd(t *testing.T) {
	pdb, _, paddr := openPrimary(t, 0)
	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	mustExec(t, pdb, `Insert item (item-no := 1, name := "seed").`)

	dir := t.TempDir()
	r := openFollower(t, dir, paddr)
	defer r.f.Close()
	// The follower's flight ring attaches at metrics registration; the
	// replica database owns the registry (simserve does the same).
	r.f.RegisterMetrics(r.db.Metrics())
	waitReady(t, r.f)
	const q = `From item Retrieve name Order By name.`
	waitConverged(t, pdb, r.db, q)

	c, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Insert item (item-no := 2, name := "traced").`); err != nil {
		t.Fatal(err)
	}
	ci, err := tx.TraceCommit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ci.ID == 0 {
		t.Fatal("TraceCommit returned a zero request ID")
	}
	if ci.Pages == 0 {
		t.Fatalf("traced commit journaled no pages: %+v", ci)
	}
	if ci.Pos == 0 {
		t.Fatalf("traced commit has no replication position: %+v", ci)
	}
	if ci.TotalNS == 0 || ci.FsyncNS == 0 {
		t.Fatalf("commit spans not filled: %+v", ci)
	}
	if !strings.Contains(ci.Rendered, fmt.Sprintf("%016x", ci.ID)) {
		t.Fatalf("rendered trace does not name the request:\n%s", ci.Rendered)
	}

	// The same ID names the commit in the primary's flight recorder (txn
	// commit and WAL flush events).
	idTag := fmt.Sprintf("id=%016x", ci.ID)
	pdump := pdb.FlightRecorder().Dump()
	if !strings.Contains(pdump, idTag) {
		t.Fatalf("primary flight recorder has no %s:\n%s", idTag, pdump)
	}

	// ...and, once the group is applied, in the follower's.
	waitConverged(t, pdb, r.db, q)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rdump := r.db.FlightRecorder().Dump()
		if strings.Contains(rdump, idTag) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower flight recorder never saw %s:\n%s", idTag, rdump)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The follower observed staleness samples from the publish clock.
	if got := r.db.Metrics().Get("sim_repl_staleness_seconds"); got == 0 {
		t.Error("sim_repl_staleness_seconds observed no samples")
	}
}

// TestFollowerReadyGate pins the /readyz semantics: a follower is ready
// only once its snapshot is installed and its lag is under the threshold.
func TestFollowerReadyGate(t *testing.T) {
	// A follower of an unreachable primary never becomes ready.
	db, err := sim.Open(filepath.Join(t.TempDir(), "stray.db"), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	stray, err := repl.StartFollower(db, filepath.Join(t.TempDir(), "stray.repl"), repl.FollowerConfig{
		Primary:      "127.0.0.1:1", // nothing listens here
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stray.Close()
	if stray.Ready(1 << 30) {
		t.Fatal("follower with an unreachable primary reports ready")
	}

	// A caught-up follower is ready even at lag threshold 0.
	pdb, _, paddr := openPrimary(t, 0)
	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	mustExec(t, pdb, `Insert item (item-no := 1, name := "one").`)
	r := openFollower(t, t.TempDir(), paddr)
	defer r.f.Close()
	waitReady(t, r.f)
	waitConverged(t, pdb, r.db, `From item Retrieve name.`)
	deadline := time.Now().Add(10 * time.Second)
	for !r.f.Ready(0) {
		if time.Now().After(deadline) {
			t.Fatal("converged follower never reported Ready(0)")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !r.f.Ready(64) {
		t.Fatal("converged follower not ready under a 64-group threshold")
	}
}

// TestMultiExplainAnalyzeOnReplica is the regression test for \analyze
// over a replica connection: the QueryTrace frame must work through the
// Multi client's replica read path, not just on the primary.
func TestMultiExplainAnalyzeOnReplica(t *testing.T) {
	pdb, _, paddr := openPrimary(t, 0)
	if err := pdb.DefineSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	mustExec(t, pdb, `Insert item (item-no := 1, name := "one").`)
	r := openFollower(t, t.TempDir(), paddr)
	defer r.f.Close()
	waitReady(t, r.f)
	const q = `From item Retrieve name.`
	waitConverged(t, pdb, r.db, q)

	m, err := client.DialMulti([]string{paddr, r.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	out, err := m.ExplainAnalyze(q)
	if err != nil {
		t.Fatalf("ExplainAnalyze through replica read path: %v", err)
	}
	if !strings.Contains(out, "rows=") {
		t.Fatalf("ExplainAnalyze output not annotated:\n%s", out)
	}
	res, ti, err := m.QueryTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || ti.TotalNS == 0 {
		t.Fatalf("QueryTrace through replica: rows=%d trace=%+v", res.NumRows(), ti)
	}
	if ti.ID == 0 {
		t.Fatal("replica-side trace lost the client request ID")
	}
}
