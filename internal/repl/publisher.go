package repl

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sim"
	"sim/internal/obs"
	"sim/internal/wal"
	"sim/internal/wire"
)

// DefaultRingBytes bounds the in-memory tail of committed groups a
// Publisher retains for followers to catch up from. A follower further
// behind than the ring is re-seeded with a snapshot.
const DefaultRingBytes = 16 << 20

// defaultBatchBytes caps how many group bytes one Subscription.Next
// returns, bounding the size of the frames a slow follower is sent.
const defaultBatchBytes = 1 << 20

// Group is one committed page group as retained by the Publisher: the
// position it advances followers to, the schema generation it was
// committed under, and private copies of the deduplicated page images.
// A schema-change marker group has no pages and a bumped Gen. TS is the
// primary's publish clock (unixnano) and IDs the request IDs that rode
// the group; both travel to followers for staleness measurement and
// end-to-end tracing.
type Group struct {
	Pos   uint64
	Gen   uint64
	TS    uint64
	IDs   []uint64
	Pages []wire.ReplPage
	Bytes int
}

// Config tunes a Publisher. The zero value uses DefaultRingBytes and
// epoch 1.
type Config struct {
	// RingBytes bounds the retained tail of committed groups (default
	// DefaultRingBytes). At least one group is always retained.
	RingBytes int
	// Epoch is the persisted fencing term the publisher publishes under
	// (see ClaimEpoch/AdvanceEpoch). 0 defaults to 1, the first term of a
	// fresh cluster.
	Epoch uint64
}

// Publisher is the primary side of replication: it observes every commit
// group via the database's commit hook, assigns it a position, retains a
// byte-bounded in-memory tail, and feeds any number of Subscriptions.
// It also produces base snapshots for followers that cannot be served
// from the tail, and tracks connected followers for status reporting.
type Publisher struct {
	db    *sim.Database
	epoch uint64 // persisted fencing term; advances only on promotion
	run   uint64 // random per-open nonce; positions are scoped to one run

	mu        sync.Mutex
	latest    uint64   // newest published position; positions start at 1
	gen       uint64   // current schema generation
	ring      []*Group // ascending positions; ring[0].Pos..ring[n-1].Pos contiguous
	ringBytes int
	maxBytes  int
	subs      map[*Subscription]struct{}
	peers     map[*Peer]struct{}

	groups    atomic.Uint64 // groups published (incl. schema markers)
	snapshots atomic.Uint64 // base snapshots produced
	evicted   atomic.Uint64 // groups evicted from the ring
}

// NewPublisher hooks a Publisher into db's commit and schema paths. The
// database must be durable (file-backed): replication ships the WAL.
func NewPublisher(db *sim.Database, cfg Config) (*Publisher, error) {
	var rb [8]byte
	if _, err := rand.Read(rb[:]); err != nil {
		return nil, fmt.Errorf("repl: run nonce: %w", err)
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = 1
	}
	p := &Publisher{
		db:       db,
		epoch:    epoch,
		run:      binary.BigEndian.Uint64(rb[:]) | 1, // never 0 ("no run")
		gen:      db.SchemaGen(),
		maxBytes: cfg.RingBytes,
		subs:     make(map[*Subscription]struct{}),
		peers:    make(map[*Peer]struct{}),
	}
	if p.maxBytes <= 0 {
		p.maxBytes = DefaultRingBytes
	}
	if err := db.SetCommitHook(p.publish); err != nil {
		return nil, err
	}
	db.SetSchemaHook(p.publishSchema)
	return p, nil
}

// Epoch returns the persisted fencing term the publisher publishes under.
func (p *Publisher) Epoch() uint64 { return p.epoch }

// Run returns the publisher's run nonce, drawn at random per open.
// Positions are only comparable within one (epoch, run) pair; a follower
// whose run does not match is re-seeded with a snapshot, which is what
// keeps a restarted primary's fresh position counter from colliding with
// history a follower applied before the restart.
func (p *Publisher) Run() uint64 { return p.run }

// Seal detaches the publisher from the database's commit and schema
// hooks. A primary being demoted after a fencing event seals its
// publisher before replicated groups from the new primary are applied, so
// the stale stream can never observe (and re-publish) them.
func (p *Publisher) Seal() {
	p.db.SetCommitHook(nil)
	p.db.SetSchemaHook(nil)
}

// Latest returns the newest published position.
func (p *Publisher) Latest() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}

// publish is the commit hook: it runs on the committing goroutine under
// the WAL's flush lock, so groups arrive in commit order. The image
// bytes alias commit-internal buffers and are copied here. It returns
// the position the group published at, which the WAL copies into the
// committers' CommitTraces.
func (p *Publisher) publish(g wal.CommitGroup) uint64 {
	pages := make([]wire.ReplPage, len(g.Images))
	bytes := 0
	for i, im := range g.Images {
		data := make([]byte, len(im.Data))
		copy(data, im.Data)
		pages[i] = wire.ReplPage{ID: uint32(im.ID), Data: data}
		bytes += len(data)
	}
	ids := append([]uint64(nil), g.IDs...)
	p.mu.Lock()
	p.latest++
	pos := p.latest
	p.append(&Group{Pos: pos, Gen: p.gen, TS: uint64(time.Now().UnixNano()), IDs: ids, Pages: pages, Bytes: bytes})
	p.mu.Unlock()
	return pos
}

// publishSchema is the schema hook: DefineSchema's page images were
// already published (with the previous generation) by the commit hook
// inside its transaction, so an empty marker group carrying the new
// generation is appended after them; applying it makes the follower
// reload its catalog from the already-replicated "~schema" structure.
func (p *Publisher) publishSchema(gen uint64) {
	p.mu.Lock()
	p.gen = gen
	p.latest++
	p.append(&Group{Pos: p.latest, Gen: gen})
	p.mu.Unlock()
}

// append adds a group to the ring, evicts past the byte bound (always
// keeping the newest group), and wakes subscribers. Caller holds p.mu.
func (p *Publisher) append(g *Group) {
	p.groups.Add(1)
	p.ring = append(p.ring, g)
	p.ringBytes += g.Bytes
	for p.ringBytes > p.maxBytes && len(p.ring) > 1 {
		p.ringBytes -= p.ring[0].Bytes
		p.ring[0] = nil
		p.ring = p.ring[1:]
		p.evicted.Add(1)
	}
	for sub := range p.subs {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

// Subscription is one follower's cursor into the published stream.
type Subscription struct {
	p      *Publisher
	cursor uint64 // last position delivered
	notify chan struct{}
}

// Subscribe opens a subscription resuming after pos within (epoch, run).
// It fails with ErrSnapshotNeeded when the follower's history cannot be
// continued: a different epoch or publisher run, a position from the
// future, or a position already evicted from the retained tail.
func (p *Publisher) Subscribe(epoch, run, pos uint64) (*Subscription, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch != p.epoch || run != p.run || pos > p.latest {
		return nil, ErrSnapshotNeeded
	}
	if pos < p.latest && (len(p.ring) == 0 || p.ring[0].Pos > pos+1) {
		return nil, ErrSnapshotNeeded
	}
	return p.subscribeLocked(pos), nil
}

func (p *Publisher) subscribeLocked(pos uint64) *Subscription {
	sub := &Subscription{p: p, cursor: pos, notify: make(chan struct{}, 1)}
	p.subs[sub] = struct{}{}
	return sub
}

// Unsubscribe detaches the subscription.
func (p *Publisher) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	p.mu.Lock()
	delete(p.subs, sub)
	p.mu.Unlock()
}

// Next returns the next batch of groups after the subscription's cursor,
// blocking until something is published, stop closes (ErrStopped), or
// wait elapses (nil, nil — the caller sends a heartbeat). It returns
// ErrSnapshotNeeded when the cursor has been evicted from the ring: the
// follower fell further behind than the retained tail and must be
// re-seeded. Batches are capped at defaultBatchBytes but always carry at
// least one group.
func (s *Subscription) Next(stop <-chan struct{}, wait time.Duration) ([]*Group, error) {
	for {
		s.p.mu.Lock()
		if s.cursor < s.p.latest {
			ring := s.p.ring
			if len(ring) == 0 || ring[0].Pos > s.cursor+1 {
				s.p.mu.Unlock()
				return nil, ErrSnapshotNeeded
			}
			start := int(s.cursor + 1 - ring[0].Pos)
			var batch []*Group
			bytes := 0
			for _, g := range ring[start:] {
				if len(batch) > 0 && bytes+g.Bytes > defaultBatchBytes {
					break
				}
				batch = append(batch, g)
				bytes += g.Bytes
			}
			s.cursor = batch[len(batch)-1].Pos
			s.p.mu.Unlock()
			return batch, nil
		}
		ch := s.notify
		s.p.mu.Unlock()
		select {
		case <-ch:
		case <-stop:
			return nil, ErrStopped
		case <-time.After(wait):
			return nil, nil
		}
	}
}

// Snapshot produces a base image of the database plus a subscription
// continuing exactly after it: the image's position is read while the
// store's write latch is still held, so no committed group can fall in
// the gap. The returned gen is the schema generation the image carries.
func (p *Publisher) Snapshot() (img []byte, pos, gen uint64, sub *Subscription, err error) {
	p.snapshots.Add(1)
	img, pos, err = p.db.ReplSnapshot(func() uint64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.latest
	})
	if err != nil {
		return nil, 0, 0, nil, err
	}
	p.mu.Lock()
	gen = p.gen
	sub = p.subscribeLocked(pos)
	p.mu.Unlock()
	return img, pos, gen, sub, nil
}

// Peer is one connected follower, tracked for status reporting only —
// acknowledgments never gate commits (replication is asynchronous).
type Peer struct {
	p    *Publisher
	addr string

	mu     sync.Mutex
	state  string
	pos    uint64
	latest uint64
	last   time.Time
}

// Register adds a follower connection to the status table.
func (p *Publisher) Register(addr string) *Peer {
	peer := &Peer{p: p, addr: addr, state: "connected", last: time.Now()}
	p.mu.Lock()
	p.peers[peer] = struct{}{}
	p.mu.Unlock()
	return peer
}

// Unregister removes the follower from the status table.
func (p *Publisher) Unregister(peer *Peer) {
	p.mu.Lock()
	delete(p.peers, peer)
	p.mu.Unlock()
}

// SetState records the follower's stream phase ("snapshot", "streaming").
func (peer *Peer) SetState(state string) {
	peer.mu.Lock()
	peer.state = state
	peer.mu.Unlock()
}

// Ack records the follower's applied position.
func (peer *Peer) Ack(pos uint64) {
	latest := peer.p.Latest()
	peer.mu.Lock()
	peer.pos = pos
	peer.latest = latest
	peer.last = time.Now()
	peer.mu.Unlock()
}

// Status reports the primary's replication state: epoch, newest
// position, and each connected follower's acked progress.
func (p *Publisher) Status() wire.ReplStatus {
	p.mu.Lock()
	st := wire.ReplStatus{Role: "primary", Epoch: p.epoch, Latest: p.latest}
	peers := make([]*Peer, 0, len(p.peers))
	for peer := range p.peers {
		peers = append(peers, peer)
	}
	p.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].addr < peers[j].addr })
	for _, peer := range peers {
		peer.mu.Lock()
		st.Replicas = append(st.Replicas, wire.ReplicaInfo{
			Addr:   peer.addr,
			State:  peer.state,
			Pos:    peer.pos,
			Latest: peer.latest,
			AgeMs:  uint64(time.Since(peer.last).Milliseconds()),
		})
		peer.mu.Unlock()
	}
	return st
}

// RegisterMetrics publishes the primary-side replication counters.
func (p *Publisher) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("sim_repl_epoch", "Replication epoch this node publishes under (advances on promotion).",
		func() float64 { return float64(p.epoch) })
	r.GaugeFunc("sim_repl_latest_pos", "Newest published replication position.",
		func() float64 { return float64(p.Latest()) })
	r.GaugeFunc("sim_repl_followers", "Connected follower streams.",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(len(p.peers))
		})
	r.GaugeFunc("sim_repl_min_ack_pos", "Oldest applied position acked by any connected follower (0 with none).",
		func() float64 {
			st := p.Status()
			if len(st.Replicas) == 0 {
				return 0
			}
			minPos := st.Replicas[0].Pos
			for _, rep := range st.Replicas[1:] {
				if rep.Pos < minPos {
					minPos = rep.Pos
				}
			}
			return float64(minPos)
		})
	r.GaugeFunc("sim_repl_ring_bytes", "Bytes of committed groups retained for follower catch-up.",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(p.ringBytes)
		})
	r.CounterFunc("sim_repl_groups_total", "Commit groups published (including schema markers).",
		func() float64 { return float64(p.groups.Load()) })
	r.CounterFunc("sim_repl_snapshots_total", "Base snapshots produced for followers.",
		func() float64 { return float64(p.snapshots.Load()) })
	r.CounterFunc("sim_repl_ring_evictions_total", "Groups evicted from the retained tail.",
		func() float64 { return float64(p.evicted.Load()) })
	r.OnReset(func() {
		p.groups.Store(0)
		p.snapshots.Store(0)
		p.evicted.Store(0)
	})
}
