// Package btree implements a clustered B+tree over the page pool:
// variable-length keys and values in slotted pages, leaf sibling chains for
// range scans, and overflow chains for large values. Every dataset and
// index of the DMSII-like substrate is one such tree.
package btree

import (
	"encoding/binary"
	"fmt"

	"sim/internal/pager"
)

// Alloc provides page allocation and access; internal/dmsii implements it
// over the buffer pool plus a persistent freelist.
type Alloc interface {
	// AllocPage returns a pinned, zeroed page.
	AllocPage() (*pager.Frame, error)
	// FreePage returns a page to the allocator.
	FreePage(id pager.PageID) error
	// Get pins an existing page.
	Get(id pager.PageID) (*pager.Frame, error)
	// Release unpins a page.
	Release(f *pager.Frame)
	// Prepare declares an imminent in-place mutation of a pinned page,
	// before the first byte changes. Versioned allocators use it to push
	// a copy-on-write pre-image; others may make it a no-op.
	Prepare(f *pager.Frame)
	// MarkDirty records mutation of a pinned page.
	MarkDirty(f *pager.Frame)
}

// Limits. A cell (key + inline value + bookkeeping) never exceeds
// maxCell, guaranteeing at least 3 cells per page; larger values spill to
// overflow pages.
const (
	headerSize   = 9
	maxKey       = 400
	maxInlineVal = 600
	maxCell      = maxKey + maxInlineVal + 16
)

// Page flags.
const (
	flagLeaf     = 1
	flagInterior = 2
	flagOverflow = 3
)

// Node header accessors. Layout:
//
//	0     flags
//	1:3   ncells (uint16)
//	3:7   next (leaf: right sibling; interior: rightmost child)
//	7:9   cellsStart (uint16): low end of the cell content area
//
// followed by the cell pointer array (2 bytes per cell); cell contents grow
// downward from the end of the page.
type node struct {
	f *pager.Frame
}

func (n node) data() []byte { return n.f.Data }

func (n node) flags() byte  { return n.data()[0] }
func (n node) isLeaf() bool { return n.flags() == flagLeaf }
func (n node) nCells() int  { return int(binary.BigEndian.Uint16(n.data()[1:3])) }
func (n node) next() pager.PageID {
	return pager.PageID(binary.BigEndian.Uint32(n.data()[3:7]))
}
func (n node) cellsStart() int { return int(binary.BigEndian.Uint16(n.data()[7:9])) }

func (n node) setFlags(b byte) { n.data()[0] = b }
func (n node) setNCells(v int) { binary.BigEndian.PutUint16(n.data()[1:3], uint16(v)) }
func (n node) setNext(id pager.PageID) {
	binary.BigEndian.PutUint32(n.data()[3:7], uint32(id))
}
func (n node) setCellsStart(v int) { binary.BigEndian.PutUint16(n.data()[7:9], uint16(v)) }

func initNode(f *pager.Frame, flags byte) node {
	n := node{f}
	n.setFlags(flags)
	n.setNCells(0)
	n.setNext(pager.Invalid)
	n.setCellsStart(pager.PageSize)
	return n
}

func (n node) cellPtr(i int) int {
	off := headerSize + 2*i
	return int(binary.BigEndian.Uint16(n.data()[off : off+2]))
}

func (n node) setCellPtr(i, v int) {
	off := headerSize + 2*i
	binary.BigEndian.PutUint16(n.data()[off:off+2], uint16(v))
}

// cellEnd returns the exclusive end offset of cell i's bytes by parsing it.
func (n node) cellSize(i int) int {
	b := n.data()[n.cellPtr(i):]
	if n.isLeaf() {
		klen, k := binary.Uvarint(b)
		p := k + int(klen)
		vkind := b[p]
		p++
		vlen, v := binary.Uvarint(b[p:])
		p += v
		if vkind == 0 {
			p += int(vlen)
		} else {
			p += 4 // overflow head page id
		}
		return p
	}
	// interior: child(4) klen key
	klen, k := binary.Uvarint(b[4:])
	return 4 + k + int(klen)
}

// freeSpace is the gap between the cell pointer array and the cell content
// area (ignoring fragmentation from deleted cells).
func (n node) freeSpace() int {
	return n.cellsStart() - (headerSize + 2*n.nCells())
}

// liveBytes sums the sizes of all live cells.
func (n node) liveBytes() int {
	total := 0
	for i := 0; i < n.nCells(); i++ {
		total += n.cellSize(i)
	}
	return total
}

// insertCell places cell bytes at index i, compacting the page first when
// contiguous free space is short but total free space suffices. Returns
// false when the cell genuinely does not fit.
func (n node) insertCell(i int, cell []byte) bool {
	need := len(cell) + 2
	if n.freeSpace() < need {
		if headerSize+2*(n.nCells()+1)+n.liveBytes()+len(cell) > pager.PageSize {
			return false
		}
		n.compact()
		if n.freeSpace() < need {
			return false
		}
	}
	start := n.cellsStart() - len(cell)
	copy(n.data()[start:], cell)
	nc := n.nCells()
	// Shift pointers [i:nc) right by one slot.
	copy(n.data()[headerSize+2*(i+1):headerSize+2*(nc+1)], n.data()[headerSize+2*i:headerSize+2*nc])
	n.setCellPtr(i, start)
	n.setNCells(nc + 1)
	n.setCellsStart(start)
	return true
}

// deleteCell removes the pointer for cell i; its bytes become fragmentation
// reclaimed by the next compact.
func (n node) deleteCell(i int) {
	nc := n.nCells()
	copy(n.data()[headerSize+2*i:headerSize+2*(nc-1)], n.data()[headerSize+2*(i+1):headerSize+2*nc])
	n.setNCells(nc - 1)
}

// compact rewrites all live cells contiguously at the end of the page,
// reclaiming fragmentation left by deleted cells.
func (n node) compact() {
	nc := n.nCells()
	cells := make([][]byte, nc)
	for i := 0; i < nc; i++ {
		sz := n.cellSize(i)
		c := make([]byte, sz)
		copy(c, n.data()[n.cellPtr(i):n.cellPtr(i)+sz])
		cells[i] = c
	}
	w := pager.PageSize
	for i := 0; i < nc; i++ {
		w -= len(cells[i])
		copy(n.data()[w:], cells[i])
		n.setCellPtr(i, w)
	}
	n.setCellsStart(w)
}

// leafCell builds a leaf cell for an inline value.
func leafCell(key, val []byte) []byte {
	cell := binary.AppendUvarint(nil, uint64(len(key)))
	cell = append(cell, key...)
	cell = append(cell, 0) // inline
	cell = binary.AppendUvarint(cell, uint64(len(val)))
	return append(cell, val...)
}

// leafCellOverflow builds a leaf cell referencing an overflow chain.
func leafCellOverflow(key []byte, totalLen int, head pager.PageID) []byte {
	cell := binary.AppendUvarint(nil, uint64(len(key)))
	cell = append(cell, key...)
	cell = append(cell, 1) // overflow
	cell = binary.AppendUvarint(cell, uint64(totalLen))
	var idb [4]byte
	binary.BigEndian.PutUint32(idb[:], uint32(head))
	return append(cell, idb[:]...)
}

// interiorCell builds an interior cell (child, key): child holds keys
// strictly less than key.
func interiorCell(child pager.PageID, key []byte) []byte {
	cell := make([]byte, 4, 4+len(key)+4)
	binary.BigEndian.PutUint32(cell, uint32(child))
	cell = binary.AppendUvarint(cell, uint64(len(key)))
	return append(cell, key...)
}

// leafKey returns the key bytes of leaf cell i (aliasing the page).
func (n node) leafKey(i int) []byte {
	b := n.data()[n.cellPtr(i):]
	klen, k := binary.Uvarint(b)
	return b[k : k+int(klen)]
}

// leafValueInfo parses leaf cell i's value descriptor.
func (n node) leafValueInfo(i int) (inline []byte, overflow pager.PageID, totalLen int) {
	b := n.data()[n.cellPtr(i):]
	klen, k := binary.Uvarint(b)
	p := k + int(klen)
	vkind := b[p]
	p++
	vlen, v := binary.Uvarint(b[p:])
	p += v
	if vkind == 0 {
		return b[p : p+int(vlen)], pager.Invalid, int(vlen)
	}
	return nil, pager.PageID(binary.BigEndian.Uint32(b[p : p+4])), int(vlen)
}

// interiorKey returns the key of interior cell i.
func (n node) interiorKey(i int) []byte {
	b := n.data()[n.cellPtr(i)+4:]
	klen, k := binary.Uvarint(b)
	return b[k : k+int(klen)]
}

// interiorChild returns the child pointer of interior cell i.
func (n node) interiorChild(i int) pager.PageID {
	off := n.cellPtr(i)
	return pager.PageID(binary.BigEndian.Uint32(n.data()[off : off+4]))
}

func (n node) setInteriorChild(i int, id pager.PageID) {
	off := n.cellPtr(i)
	binary.BigEndian.PutUint32(n.data()[off:off+4], uint32(id))
}

// rawCell returns the raw bytes of cell i (aliasing the page).
func (n node) rawCell(i int) []byte {
	return n.data()[n.cellPtr(i) : n.cellPtr(i)+n.cellSize(i)]
}

func (n node) check() error {
	if f := n.flags(); f != flagLeaf && f != flagInterior {
		return fmt.Errorf("btree: page %d has flags %d, not a tree node", n.f.ID, f)
	}
	return nil
}
