package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"sim/internal/pager"
)

// Tree is a B+tree handle. The root page id changes when the root splits;
// owners persist it through the OnRootChange callback.
type Tree struct {
	a            Alloc
	root         pager.PageID
	onRootChange func(pager.PageID) error
}

// Create allocates an empty tree (a single leaf root).
func Create(a Alloc) (*Tree, error) {
	f, err := a.AllocPage()
	if err != nil {
		return nil, err
	}
	initNode(f, flagLeaf)
	a.MarkDirty(f)
	root := f.ID
	a.Release(f)
	return &Tree{a: a, root: root}, nil
}

// Open attaches to an existing tree rooted at root. onRootChange (may be
// nil) is invoked whenever the root page id changes.
func Open(a Alloc, root pager.PageID, onRootChange func(pager.PageID) error) *Tree {
	return &Tree{a: a, root: root, onRootChange: onRootChange}
}

// Root returns the current root page id.
func (t *Tree) Root() pager.PageID { return t.root }

// SetOnRootChange installs the root-change callback.
func (t *Tree) SetOnRootChange(cb func(pager.PageID) error) { t.onRootChange = cb }

type split struct {
	sep   []byte
	right pager.PageID
}

// Put inserts or replaces the value for key.
func (t *Tree) Put(key, val []byte) error {
	if len(key) > maxKey {
		return fmt.Errorf("btree: key of %d bytes exceeds the %d-byte limit", len(key), maxKey)
	}
	var cell []byte
	if len(val) > maxInlineVal {
		head, err := t.writeOverflow(val)
		if err != nil {
			return err
		}
		cell = leafCellOverflow(key, len(val), head)
	} else {
		cell = leafCell(key, val)
	}
	sp, err := t.put(t.root, key, cell)
	if err != nil {
		return err
	}
	if sp == nil {
		return nil
	}
	// Root split: grow the tree by one level.
	f, err := t.a.AllocPage()
	if err != nil {
		return err
	}
	n := initNode(f, flagInterior)
	n.setNext(sp.right)
	if !n.insertCell(0, interiorCell(t.root, sp.sep)) {
		t.a.Release(f)
		return fmt.Errorf("btree: separator does not fit in fresh root")
	}
	t.a.MarkDirty(f)
	newRoot := f.ID
	t.a.Release(f)
	t.root = newRoot
	if t.onRootChange != nil {
		return t.onRootChange(newRoot)
	}
	return nil
}

// leafSearch finds the lower bound position of key in leaf n.
func leafSearch(n node, key []byte) (int, bool) {
	nc := n.nCells()
	i := sort.Search(nc, func(i int) bool { return bytes.Compare(n.leafKey(i), key) >= 0 })
	return i, i < nc && bytes.Equal(n.leafKey(i), key)
}

// route picks the child of interior node n to descend for key: the first
// cell whose separator exceeds key, else the rightmost child. It returns
// the cell index (nCells for rightmost) and the child id.
func route(n node, key []byte) (int, pager.PageID) {
	nc := n.nCells()
	i := sort.Search(nc, func(i int) bool { return bytes.Compare(n.interiorKey(i), key) > 0 })
	if i == nc {
		return nc, n.next()
	}
	return i, n.interiorChild(i)
}

func (t *Tree) put(id pager.PageID, key, cell []byte) (*split, error) {
	f, err := t.a.Get(id)
	if err != nil {
		return nil, err
	}
	defer t.a.Release(f)
	n := node{f}
	if err := n.check(); err != nil {
		return nil, err
	}

	if n.isLeaf() {
		i, found := leafSearch(n, key)
		t.a.Prepare(f)
		if found {
			// Replace: drop the old cell (freeing its overflow chain).
			if _, ovf, _ := n.leafValueInfo(i); ovf != pager.Invalid {
				if err := t.freeOverflow(ovf); err != nil {
					return nil, err
				}
			}
			n.deleteCell(i)
		}
		if n.insertCell(i, cell) {
			t.a.MarkDirty(f)
			return nil, nil
		}
		return t.splitLeaf(n, i, cell)
	}

	idx, child := route(n, key)
	sp, err := t.put(child, key, cell)
	if err != nil || sp == nil {
		return nil, err
	}
	return t.insertSeparator(n, idx, child, sp)
}

// insertSeparator records a child split (child, sp.sep, sp.right) in
// interior node n at cell position idx, splitting n itself when full.
func (t *Tree) insertSeparator(n node, idx int, child pager.PageID, sp *split) (*split, error) {
	// The new cell (child, sep) routes keys below sep to the old child;
	// the existing cell at idx (or the rightmost pointer) must now point
	// at the new right sibling.
	t.a.Prepare(n.f)
	if idx == n.nCells() {
		n.setNext(sp.right)
	} else {
		n.setInteriorChild(idx, sp.right)
	}
	cell := interiorCell(child, sp.sep)
	if n.insertCell(idx, cell) {
		t.a.MarkDirty(n.f)
		return nil, nil
	}
	return t.splitInterior(n, idx, cell)
}

// splitLeaf distributes the leaf's cells plus the new cell (at position i)
// across the old page and a new right sibling, splitting by byte volume.
func (t *Tree) splitLeaf(n node, i int, cell []byte) (*split, error) {
	cells := collectCells(n, i, cell)
	mid := splitPoint(cells)

	rf, err := t.a.AllocPage()
	if err != nil {
		return nil, err
	}
	defer t.a.Release(rf)
	r := initNode(rf, flagLeaf)
	r.setNext(n.next())
	for j, c := range cells[mid:] {
		if !r.insertCell(j, c) {
			return nil, fmt.Errorf("btree: split leaf overflow")
		}
	}
	t.a.Prepare(n.f)
	rebuild(n, flagLeaf, cells[:mid])
	n.setNext(rf.ID)
	t.a.MarkDirty(n.f)
	t.a.MarkDirty(rf)

	sep := keyOfLeafCell(cells[mid])
	return &split{sep: append([]byte(nil), sep...), right: rf.ID}, nil
}

// splitInterior splits interior node n after conceptually inserting cell at
// position i. The middle cell's key is promoted (not kept); its child
// becomes the left node's rightmost pointer.
func (t *Tree) splitInterior(n node, i int, cell []byte) (*split, error) {
	cells := collectCells(n, i, cell)
	mid := splitPoint(cells)
	if mid == len(cells)-1 {
		mid-- // promoted cell must leave at least one cell on the right
	}
	if mid < 1 {
		mid = 1
	}
	promoted := cells[mid]
	promChild := pager.PageID(binary.BigEndian.Uint32(promoted[:4]))
	promKey := keyOfInteriorCell(promoted)

	rightmost := n.next()
	rf, err := t.a.AllocPage()
	if err != nil {
		return nil, err
	}
	defer t.a.Release(rf)
	r := initNode(rf, flagInterior)
	r.setNext(rightmost)
	for j, c := range cells[mid+1:] {
		if !r.insertCell(j, c) {
			return nil, fmt.Errorf("btree: split interior overflow")
		}
	}
	t.a.Prepare(n.f)
	rebuild(n, flagInterior, cells[:mid])
	n.setNext(promChild)
	t.a.MarkDirty(n.f)
	t.a.MarkDirty(rf)

	return &split{sep: append([]byte(nil), promKey...), right: rf.ID}, nil
}

// collectCells copies out all of n's cells with newCell inserted at i.
func collectCells(n node, i int, newCell []byte) [][]byte {
	nc := n.nCells()
	cells := make([][]byte, 0, nc+1)
	for j := 0; j < nc; j++ {
		c := n.rawCell(j)
		cells = append(cells, append([]byte(nil), c...))
	}
	cells = append(cells, nil)
	copy(cells[i+1:], cells[i:])
	cells[i] = newCell
	return cells
}

// splitPoint picks the index where cumulative byte volume crosses half.
func splitPoint(cells [][]byte) int {
	total := 0
	for _, c := range cells {
		total += len(c)
	}
	acc := 0
	for i, c := range cells {
		acc += len(c)
		if acc*2 >= total {
			if i+1 >= len(cells) {
				return len(cells) - 1
			}
			return i + 1
		}
	}
	return len(cells) / 2
}

// rebuild reinitializes node n with the given cells.
func rebuild(n node, flags byte, cells [][]byte) {
	next := n.next()
	initNode(n.f, flags)
	n.setNext(next)
	for j, c := range cells {
		if !n.insertCell(j, c) {
			panic("btree: rebuild overflow")
		}
	}
}

func keyOfLeafCell(cell []byte) []byte {
	klen, k := binary.Uvarint(cell)
	return cell[k : k+int(klen)]
}

func keyOfInteriorCell(cell []byte) []byte {
	klen, k := binary.Uvarint(cell[4:])
	return cell[4+k : 4+k+int(klen)]
}

// Get returns the value stored for key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	id := t.root
	for {
		f, err := t.a.Get(id)
		if err != nil {
			return nil, false, err
		}
		n := node{f}
		if err := n.check(); err != nil {
			t.a.Release(f)
			return nil, false, err
		}
		if !n.isLeaf() {
			_, child := route(n, key)
			t.a.Release(f)
			id = child
			continue
		}
		i, found := leafSearch(n, key)
		if !found {
			t.a.Release(f)
			return nil, false, nil
		}
		inline, ovf, total := n.leafValueInfo(i)
		if ovf == pager.Invalid {
			v := append([]byte(nil), inline...)
			t.a.Release(f)
			return v, true, nil
		}
		t.a.Release(f)
		v, err := t.readOverflow(ovf, total)
		return v, err == nil, err
	}
}

// Delete removes key, reporting whether it was present. Emptied leaves are
// left in place (lazy space reclamation); their pages are recovered when
// the tree is dropped.
func (t *Tree) Delete(key []byte) (bool, error) {
	id := t.root
	for {
		f, err := t.a.Get(id)
		if err != nil {
			return false, err
		}
		n := node{f}
		if err := n.check(); err != nil {
			t.a.Release(f)
			return false, err
		}
		if !n.isLeaf() {
			_, child := route(n, key)
			t.a.Release(f)
			id = child
			continue
		}
		i, found := leafSearch(n, key)
		if !found {
			t.a.Release(f)
			return false, nil
		}
		if _, ovf, _ := n.leafValueInfo(i); ovf != pager.Invalid {
			if err := t.freeOverflow(ovf); err != nil {
				t.a.Release(f)
				return false, err
			}
		}
		t.a.Prepare(f)
		n.deleteCell(i)
		t.a.MarkDirty(f)
		t.a.Release(f)
		return true, nil
	}
}

// Drop frees every page of the tree, including overflow chains.
func (t *Tree) Drop() error {
	return t.drop(t.root)
}

func (t *Tree) drop(id pager.PageID) error {
	f, err := t.a.Get(id)
	if err != nil {
		return err
	}
	n := node{f}
	if n.isLeaf() {
		for i := 0; i < n.nCells(); i++ {
			if _, ovf, _ := n.leafValueInfo(i); ovf != pager.Invalid {
				if err := t.freeOverflow(ovf); err != nil {
					t.a.Release(f)
					return err
				}
			}
		}
		t.a.Release(f)
		return t.a.FreePage(id)
	}
	children := make([]pager.PageID, 0, n.nCells()+1)
	for i := 0; i < n.nCells(); i++ {
		children = append(children, n.interiorChild(i))
	}
	children = append(children, n.next())
	t.a.Release(f)
	for _, c := range children {
		if err := t.drop(c); err != nil {
			return err
		}
	}
	return t.a.FreePage(id)
}

// ---------------------------------------------------------------------------
// Overflow chains
// ---------------------------------------------------------------------------

const overflowHeader = 7 // flags(1) next(4) len(2)
const overflowCap = pager.PageSize - overflowHeader

func (t *Tree) writeOverflow(val []byte) (pager.PageID, error) {
	head := pager.Invalid
	var prev *pager.Frame
	for off := 0; off < len(val); off += overflowCap {
		end := off + overflowCap
		if end > len(val) {
			end = len(val)
		}
		f, err := t.a.AllocPage()
		if err != nil {
			if prev != nil {
				t.a.Release(prev)
			}
			return pager.Invalid, err
		}
		f.Data[0] = flagOverflow
		binary.BigEndian.PutUint32(f.Data[1:5], uint32(pager.Invalid))
		binary.BigEndian.PutUint16(f.Data[5:7], uint16(end-off))
		copy(f.Data[overflowHeader:], val[off:end])
		t.a.MarkDirty(f)
		if prev == nil {
			head = f.ID
		} else {
			t.a.Prepare(prev)
			binary.BigEndian.PutUint32(prev.Data[1:5], uint32(f.ID))
			t.a.MarkDirty(prev)
			t.a.Release(prev)
		}
		prev = f
	}
	if prev != nil {
		t.a.Release(prev)
	}
	return head, nil
}

func (t *Tree) readOverflow(head pager.PageID, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	id := head
	for id != pager.Invalid {
		f, err := t.a.Get(id)
		if err != nil {
			return nil, err
		}
		if f.Data[0] != flagOverflow {
			t.a.Release(f)
			return nil, fmt.Errorf("btree: page %d is not an overflow page", id)
		}
		n := int(binary.BigEndian.Uint16(f.Data[5:7]))
		out = append(out, f.Data[overflowHeader:overflowHeader+n]...)
		next := pager.PageID(binary.BigEndian.Uint32(f.Data[1:5]))
		t.a.Release(f)
		id = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("btree: overflow chain has %d bytes, expected %d", len(out), total)
	}
	return out, nil
}

func (t *Tree) freeOverflow(head pager.PageID) error {
	id := head
	for id != pager.Invalid {
		f, err := t.a.Get(id)
		if err != nil {
			return err
		}
		next := pager.PageID(binary.BigEndian.Uint32(f.Data[1:5]))
		t.a.Release(f)
		if err := t.a.FreePage(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}
