package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sim/internal/pager"
)

// testAlloc is a minimal Alloc over a memory-backed pool with a trivial
// in-memory freelist.
type testAlloc struct {
	pool *pager.Pool
	free []pager.PageID
}

func newTestAlloc(t testing.TB, capacity int) *testAlloc {
	t.Helper()
	pool, err := pager.NewPool(pager.NewMemFile(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	// Reserve page 0 as a stand-in meta page so Invalid-vs-0 confusion
	// would surface in tests.
	f, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(f)
	return &testAlloc{pool: pool}
}

func (a *testAlloc) AllocPage() (*pager.Frame, error) {
	if n := len(a.free); n > 0 {
		id := a.free[n-1]
		a.free = a.free[:n-1]
		return a.pool.AllocateAt(id)
	}
	return a.pool.Allocate()
}

func (a *testAlloc) FreePage(id pager.PageID) error {
	a.free = append(a.free, id)
	return nil
}

func (a *testAlloc) Get(id pager.PageID) (*pager.Frame, error) { return a.pool.Get(id) }
func (a *testAlloc) Release(f *pager.Frame)                    { a.pool.Release(f) }
func (a *testAlloc) Prepare(f *pager.Frame)                    { a.pool.Prepare(f) }
func (a *testAlloc) MarkDirty(f *pager.Frame)                  { a.pool.MarkDirty(f) }

func newTree(t testing.TB) (*Tree, *testAlloc) {
	t.Helper()
	a := newTestAlloc(t, 64)
	tr, err := Create(a)
	if err != nil {
		t.Fatal(err)
	}
	return tr, a
}

func TestPutGetSmall(t *testing.T) {
	tr, _ := newTree(t)
	if err := tr.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := tr.Get([]byte("nope")); ok {
		t.Error("found a missing key")
	}
}

func TestPutReplace(t *testing.T) {
	tr, _ := newTree(t)
	tr.Put([]byte("k"), []byte("old"))
	tr.Put([]byte("k"), []byte("new value that is longer"))
	v, ok, _ := tr.Get([]byte("k"))
	if !ok || string(v) != "new value that is longer" {
		t.Fatalf("Get after replace = %q", v)
	}
}

func TestEmptyValueAndKey(t *testing.T) {
	tr, _ := newTree(t)
	if err := tr.Put([]byte{}, []byte{}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte{})
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty kv: %q %v %v", v, ok, err)
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestManyInsertsAscending(t *testing.T) {
	tr, _ := newTree(t)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d = %q %v %v", i, v, ok, err)
		}
	}
}

func TestManyInsertsRandomOrder(t *testing.T) {
	tr, _ := newTree(t)
	const n = 5000
	r := rand.New(rand.NewSource(42))
	perm := r.Perm(n)
	for _, i := range perm {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Full scan must be sorted and complete.
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev []byte
	for ; c.Valid(); c.Next() {
		if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
			t.Fatalf("scan out of order at %q", c.Key())
		}
		prev = append(prev[:0], c.Key()...)
		count++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if count != n {
		t.Fatalf("scan found %d keys, want %d", count, n)
	}
}

func TestSeekLowerBound(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 100; i += 2 {
		tr.Put(key(i), val(i))
	}
	// Seek to an absent odd key lands on the next even one.
	c, err := tr.Seek(key(51))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || !bytes.Equal(c.Key(), key(52)) {
		t.Fatalf("seek landed on %q", c.Key())
	}
	// Seek beyond the end is invalid.
	c, _ = tr.Seek(key(1000))
	if c.Valid() {
		t.Error("seek past end should be invalid")
	}
}

func TestSeekPrefix(t *testing.T) {
	tr, _ := newTree(t)
	tr.Put([]byte("a:1"), []byte("x"))
	tr.Put([]byte("b:1"), []byte("x"))
	tr.Put([]byte("b:2"), []byte("x"))
	tr.Put([]byte("c:1"), []byte("x"))
	c, err := tr.SeekPrefix([]byte("b:"))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for ; c.Valid(); c.Next() {
		got = append(got, string(c.Key()))
	}
	if len(got) != 2 || got[0] != "b:1" || got[1] != "b:2" {
		t.Fatalf("prefix scan = %v", got)
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTree(t)
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i))
	}
	for i := 0; i < n; i += 2 {
		ok, err := tr.Delete(key(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if ok, _ := tr.Delete(key(0)); ok {
		t.Error("double delete reported success")
	}
	for i := 0; i < n; i++ {
		_, ok, _ := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("after delete, key %d present=%v want %v", i, ok, want)
		}
	}
	// Scan sees only survivors, in order.
	c, _ := tr.First()
	count := 0
	for ; c.Valid(); c.Next() {
		count++
	}
	if count != n/2 {
		t.Fatalf("scan found %d, want %d", count, n/2)
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 500; i++ {
		tr.Put(key(i), val(i))
	}
	for i := 0; i < 500; i++ {
		tr.Delete(key(i))
	}
	c, _ := tr.First()
	if c.Valid() {
		t.Fatal("empty tree scan is valid")
	}
	for i := 0; i < 500; i++ {
		tr.Put(key(i), val(i+1))
	}
	v, ok, _ := tr.Get(key(7))
	if !ok || !bytes.Equal(v, val(8)) {
		t.Fatalf("reinserted value = %q", v)
	}
}

func TestOverflowValues(t *testing.T) {
	tr, a := newTree(t)
	big := bytes.Repeat([]byte("x"), 3*pager.PageSize+123)
	if err := tr.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("big get: len=%d ok=%v err=%v", len(v), ok, err)
	}
	// Replace frees the old chain.
	freeBefore := len(a.free)
	if err := tr.Put([]byte("big"), []byte("small now")); err != nil {
		t.Fatal(err)
	}
	if len(a.free) <= freeBefore {
		t.Error("replacing an overflow value freed no pages")
	}
	v, _, _ = tr.Get([]byte("big"))
	if string(v) != "small now" {
		t.Fatalf("after replace: %q", v)
	}
	// Cursor reads overflow values too.
	tr.Put([]byte("big2"), big)
	c, _ := tr.Seek([]byte("big2"))
	if !c.Valid() || !bytes.Equal(c.Value(), big) {
		t.Error("cursor did not read overflow value")
	}
	// Delete frees the chain.
	freeBefore = len(a.free)
	tr.Delete([]byte("big2"))
	if len(a.free) <= freeBefore {
		t.Error("deleting an overflow value freed no pages")
	}
}

func TestKeyTooLarge(t *testing.T) {
	tr, _ := newTree(t)
	if err := tr.Put(bytes.Repeat([]byte("k"), maxKey+1), []byte("v")); err == nil {
		t.Error("oversized key accepted")
	}
}

func TestRootChangeCallback(t *testing.T) {
	tr, _ := newTree(t)
	var reported pager.PageID
	calls := 0
	tr.SetOnRootChange(func(id pager.PageID) error {
		reported = id
		calls++
		return nil
	})
	for i := 0; i < 2000; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if calls == 0 {
		t.Fatal("root never split over 2000 inserts")
	}
	if reported != tr.Root() {
		t.Errorf("callback reported %d, tree root is %d", reported, tr.Root())
	}
}

func TestDropFreesPages(t *testing.T) {
	tr, a := newTree(t)
	for i := 0; i < 2000; i++ {
		tr.Put(key(i), val(i))
	}
	tr.Put([]byte("zz-big"), bytes.Repeat([]byte("y"), 2*pager.PageSize))
	if err := tr.Drop(); err != nil {
		t.Fatal(err)
	}
	// All pages but the reserved meta page are on the freelist.
	if got, want := len(a.free), int(a.pool.NumPages())-1; got != want {
		t.Errorf("freelist has %d pages, want %d", got, want)
	}
}

// TestRandomizedAgainstMap cross-checks a random operation sequence against
// a Go map oracle, then verifies full-scan ordering.
func TestRandomizedAgainstMap(t *testing.T) {
	tr, _ := newTree(t)
	oracle := map[string]string{}
	r := rand.New(rand.NewSource(7))
	for op := 0; op < 20000; op++ {
		k := fmt.Sprintf("k%04d", r.Intn(3000))
		switch r.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d-%d", op, r.Intn(1000))
			if r.Intn(50) == 0 {
				v = string(bytes.Repeat([]byte(v), 200)) // force overflow sometimes
			}
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("op %d put: %v", op, err)
			}
			oracle[k] = v
		case 2:
			ok, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			if _, present := oracle[k]; present != ok {
				t.Fatalf("op %d delete mismatch: oracle %v, tree %v", op, present, ok)
			}
			delete(oracle, k)
		}
	}
	// Point queries.
	for k, want := range oracle {
		v, ok, err := tr.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("get %q = %q %v %v, want %q", k, v, ok, err, want)
		}
	}
	// Scan matches sorted oracle.
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for ; c.Valid(); c.Next() {
		if i >= len(keys) {
			t.Fatalf("scan has extra key %q", c.Key())
		}
		if string(c.Key()) != keys[i] {
			t.Fatalf("scan key %d = %q, want %q", i, c.Key(), keys[i])
		}
		if string(c.Value()) != oracle[keys[i]] {
			t.Fatalf("scan value for %q mismatched", c.Key())
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("scan found %d keys, want %d", i, len(keys))
	}
}

func BenchmarkPut(b *testing.B) {
	tr, _ := newTree(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), val(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr, _ := newTree(b)
	for i := 0; i < 10000; i++ {
		tr.Put(key(i), val(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % 10000))
	}
}
