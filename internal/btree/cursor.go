package btree

import (
	"bytes"

	"sim/internal/pager"
)

// Cursor iterates key/value pairs in ascending key order. It snapshots one
// leaf at a time, so the tree may be read (but not mutated) concurrently;
// the executor materializes update target lists before mutating.
type Cursor struct {
	t         *Tree
	keys      [][]byte
	vals      [][]byte
	buf       []byte // single backing store for the snapshotted cells
	offs      []int  // staging: key-end/value-end offset pairs into buf
	i         int
	next      pager.PageID
	valid     bool
	err       error
	prefix    []byte // non-nil: iteration stops when keys leave this prefix
	prefixBuf []byte // reused backing for prefix across SeekPrefixInto calls
}

// First returns a cursor positioned at the smallest key.
func (t *Tree) First() (*Cursor, error) { return t.Seek(nil) }

// Seek returns a cursor positioned at the first key >= key.
func (t *Tree) Seek(key []byte) (*Cursor, error) {
	c := &Cursor{}
	if err := t.SeekInto(c, key); err != nil {
		return nil, err
	}
	return c, nil
}

// SeekInto positions c at the first key >= key, reusing c's internal
// buffers. A zero Cursor is ready for use; reusing one across seeks makes
// repeated point probes allocation-free in the steady state.
func (t *Tree) SeekInto(c *Cursor, key []byte) error {
	c.t = t
	c.err = nil
	c.valid = false
	c.prefix = nil
	id := t.root
	for {
		f, err := t.a.Get(id)
		if err != nil {
			return err
		}
		n := node{f}
		if err := n.check(); err != nil {
			t.a.Release(f)
			return err
		}
		if !n.isLeaf() {
			_, child := route(n, key)
			t.a.Release(f)
			id = child
			continue
		}
		i, _ := leafSearch(n, key)
		if err := c.loadLeaf(n, i); err != nil {
			t.a.Release(f)
			return err
		}
		t.a.Release(f)
		break
	}
	if !c.valid {
		c.advanceLeaf()
	}
	return c.err
}

// SeekPrefix returns a cursor over exactly the keys beginning with prefix.
func (t *Tree) SeekPrefix(prefix []byte) (*Cursor, error) {
	c := &Cursor{}
	if err := t.SeekPrefixInto(c, prefix); err != nil {
		return nil, err
	}
	return c, nil
}

// SeekPrefixInto is SeekPrefix into a caller-reused cursor.
func (t *Tree) SeekPrefixInto(c *Cursor, prefix []byte) error {
	if err := t.SeekInto(c, prefix); err != nil {
		return err
	}
	c.prefixBuf = append(c.prefixBuf[:0], prefix...)
	c.prefix = c.prefixBuf
	c.checkPrefix()
	return nil
}

// loadLeaf snapshots leaf n's cells from position i on. All cells share
// the cursor's single backing buffer: extents are recorded first (growth
// reallocates the buffer), then the key/value sub-slices are carved once
// the buffer is final, capacity-capped so appending to one cannot reach
// its neighbor.
func (c *Cursor) loadLeaf(n node, i int) error {
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	c.buf = c.buf[:0]
	c.offs = c.offs[:0]
	c.i = 0
	c.next = n.next()
	nc := n.nCells()
	for j := i; j < nc; j++ {
		c.buf = append(c.buf, n.leafKey(j)...)
		c.offs = append(c.offs, len(c.buf))
		inline, ovf, total := n.leafValueInfo(j)
		if ovf == pager.Invalid {
			c.buf = append(c.buf, inline...)
		} else {
			v, err := c.t.readOverflow(ovf, total)
			if err != nil {
				return err
			}
			c.buf = append(c.buf, v...)
		}
		c.offs = append(c.offs, len(c.buf))
	}
	off := 0
	for k := 0; k+1 < len(c.offs); k += 2 {
		ke, ve := c.offs[k], c.offs[k+1]
		c.keys = append(c.keys, c.buf[off:ke:ke])
		c.vals = append(c.vals, c.buf[ke:ve:ve])
		off = ve
	}
	c.valid = len(c.keys) > 0
	return nil
}

// advanceLeaf walks the sibling chain until a non-empty leaf is found.
func (c *Cursor) advanceLeaf() {
	for c.next != pager.Invalid {
		f, err := c.t.a.Get(c.next)
		if err != nil {
			c.err = err
			c.valid = false
			return
		}
		n := node{f}
		err = c.loadLeaf(n, 0)
		c.t.a.Release(f)
		if err != nil {
			c.err = err
			c.valid = false
			return
		}
		if c.valid {
			return
		}
	}
	c.valid = false
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid && c.err == nil }

// Err returns the first error encountered while iterating.
func (c *Cursor) Err() error { return c.err }

// Key returns the current key (valid until Next).
func (c *Cursor) Key() []byte { return c.keys[c.i] }

// Value returns the current value (valid until Next).
func (c *Cursor) Value() []byte { return c.vals[c.i] }

// Next advances the cursor.
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	c.i++
	if c.i >= len(c.keys) {
		c.advanceLeaf()
	}
	c.checkPrefix()
}

func (c *Cursor) checkPrefix() {
	if c.prefix != nil && c.Valid() && !bytes.HasPrefix(c.Key(), c.prefix) {
		c.valid = false
	}
}
