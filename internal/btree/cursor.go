package btree

import (
	"bytes"

	"sim/internal/pager"
)

// Cursor iterates key/value pairs in ascending key order. It snapshots one
// leaf at a time, so the tree may be read (but not mutated) concurrently;
// the executor materializes update target lists before mutating.
type Cursor struct {
	t      *Tree
	keys   [][]byte
	vals   [][]byte
	i      int
	next   pager.PageID
	valid  bool
	err    error
	prefix []byte // non-nil: iteration stops when keys leave this prefix
}

// First returns a cursor positioned at the smallest key.
func (t *Tree) First() (*Cursor, error) { return t.Seek(nil) }

// Seek returns a cursor positioned at the first key >= key.
func (t *Tree) Seek(key []byte) (*Cursor, error) {
	c := &Cursor{t: t}
	id := t.root
	for {
		f, err := t.a.Get(id)
		if err != nil {
			return nil, err
		}
		n := node{f}
		if err := n.check(); err != nil {
			t.a.Release(f)
			return nil, err
		}
		if !n.isLeaf() {
			_, child := route(n, key)
			t.a.Release(f)
			id = child
			continue
		}
		i, _ := leafSearch(n, key)
		if err := c.loadLeaf(n, i); err != nil {
			t.a.Release(f)
			return nil, err
		}
		t.a.Release(f)
		break
	}
	if !c.valid {
		c.advanceLeaf()
	}
	return c, c.err
}

// SeekPrefix returns a cursor over exactly the keys beginning with prefix.
func (t *Tree) SeekPrefix(prefix []byte) (*Cursor, error) {
	c, err := t.Seek(prefix)
	if err != nil {
		return nil, err
	}
	c.prefix = append([]byte(nil), prefix...)
	c.checkPrefix()
	return c, nil
}

// loadLeaf snapshots leaf n's cells from position i on.
func (c *Cursor) loadLeaf(n node, i int) error {
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	c.i = 0
	c.next = n.next()
	nc := n.nCells()
	for j := i; j < nc; j++ {
		c.keys = append(c.keys, append([]byte(nil), n.leafKey(j)...))
		inline, ovf, total := n.leafValueInfo(j)
		if ovf == pager.Invalid {
			c.vals = append(c.vals, append([]byte(nil), inline...))
		} else {
			v, err := c.t.readOverflow(ovf, total)
			if err != nil {
				return err
			}
			c.vals = append(c.vals, v)
		}
	}
	c.valid = len(c.keys) > 0
	return nil
}

// advanceLeaf walks the sibling chain until a non-empty leaf is found.
func (c *Cursor) advanceLeaf() {
	for c.next != pager.Invalid {
		f, err := c.t.a.Get(c.next)
		if err != nil {
			c.err = err
			c.valid = false
			return
		}
		n := node{f}
		err = c.loadLeaf(n, 0)
		c.t.a.Release(f)
		if err != nil {
			c.err = err
			c.valid = false
			return
		}
		if c.valid {
			return
		}
	}
	c.valid = false
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid && c.err == nil }

// Err returns the first error encountered while iterating.
func (c *Cursor) Err() error { return c.err }

// Key returns the current key (valid until Next).
func (c *Cursor) Key() []byte { return c.keys[c.i] }

// Value returns the current value (valid until Next).
func (c *Cursor) Value() []byte { return c.vals[c.i] }

// Next advances the cursor.
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	c.i++
	if c.i >= len(c.keys) {
		c.advanceLeaf()
	}
	c.checkPrefix()
}

func (c *Cursor) checkPrefix() {
	if c.prefix != nil && c.Valid() && !bytes.HasPrefix(c.Key(), c.prefix) {
		c.valid = false
	}
}
