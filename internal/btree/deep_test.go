package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"sim/internal/pager"
)

// bigKey produces ~300-byte keys so leaves hold few cells and interior
// nodes split after modest volumes, exercising multi-level trees.
func bigKey(i int) []byte {
	return []byte(fmt.Sprintf("%0296d-%04d", i, i))
}

func TestDeepTreeInteriorSplits(t *testing.T) {
	tr, _ := newTree(t)
	const n = 400
	for i := 0; i < n; i++ {
		if err := tr.Put(bigKey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// With 300-byte keys a leaf holds ~12 cells and an interior node ~12
	// separators, so 400 keys force at least three levels (interior
	// splits included).
	if h := treeHeight(t, tr); h < 3 {
		t.Fatalf("tree height = %d, want >= 3 (interior splits untested)", h)
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(bigKey(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d = %q %v %v", i, v, ok, err)
		}
	}
	// Ordered full scan.
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev []byte
	for ; c.Valid(); c.Next() {
		if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], c.Key()...)
		count++
	}
	if count != n {
		t.Fatalf("scan = %d keys, want %d", count, n)
	}
}

func TestDeepTreeRandomizedBigKeys(t *testing.T) {
	tr, _ := newTree(t)
	oracle := map[int]string{}
	r := rand.New(rand.NewSource(11))
	for op := 0; op < 3000; op++ {
		k := r.Intn(500)
		switch r.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val-%d", op)
			if err := tr.Put(bigKey(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 2:
			ok, err := tr.Delete(bigKey(k))
			if err != nil {
				t.Fatal(err)
			}
			if _, present := oracle[k]; present != ok {
				t.Fatalf("delete mismatch at op %d", op)
			}
			delete(oracle, k)
		}
	}
	for k, want := range oracle {
		v, ok, err := tr.Get(bigKey(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("get %d = %q %v %v, want %q", k, v, ok, err, want)
		}
	}
	if h := treeHeight(t, tr); h < 3 {
		t.Errorf("tree height = %d, want >= 3", h)
	}
}

// treeHeight walks the leftmost spine.
func treeHeight(t *testing.T, tr *Tree) int {
	t.Helper()
	h := 0
	id := tr.root
	for {
		f, err := tr.a.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		n := node{f}
		h++
		if n.isLeaf() {
			tr.a.Release(f)
			return h
		}
		var next pager.PageID
		if n.nCells() > 0 {
			next = n.interiorChild(0)
		} else {
			next = n.next()
		}
		tr.a.Release(f)
		id = next
	}
}
