package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"sim/internal/pager"
)

// mutateCRC rewrites a record's CRC field so the header+payload verify,
// letting seeds reach the per-kind validation paths.
func sealRecord(rec []byte) []byte {
	crc := crc32.ChecksumIEEE(rec[0:9])
	crc = crc32.Update(crc, crc32.IEEETable, rec[headerSize:])
	binary.BigEndian.PutUint32(rec[9:13], crc)
	return rec
}

// FuzzReplay feeds arbitrary bytes to the recovery path as a WAL image.
// Recovery must never panic: it either replays a prefix of complete
// committed batches or salvages the tail, and a second recovery over the
// truncated log must be a no-op.
func FuzzReplay(f *testing.F) {
	// A complete committed batch (one page + commit record).
	valid := record(recPage, 7, bytes.Repeat([]byte{0x7A}, pager.PageSize))
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], 1)
	valid = append(valid, record(recCommit, 0, seqb[:])...)
	f.Add(valid)

	// Truncated header.
	f.Add([]byte{recPage, 0, 0, 0})
	// Header claiming a payload that never arrives.
	f.Add(record(recPage, 3, bytes.Repeat([]byte{1}, pager.PageSize))[:headerSize+10])
	// Zero-length payload with a valid CRC (page records must be PageSize).
	zero := make([]byte, headerSize)
	zero[0] = recPage
	f.Add(sealRecord(zero))
	// Valid-CRC page record with a wrong (non-PageSize) length.
	short := make([]byte, headerSize+32)
	short[0] = recPage
	binary.BigEndian.PutUint32(short[5:9], 32)
	f.Add(sealRecord(short))
	// Valid-CRC record of an unknown kind.
	unk := make([]byte, headerSize+4)
	unk[0] = 99
	binary.BigEndian.PutUint32(unk[5:9], 4)
	f.Add(sealRecord(unk))
	// Commit record with a runt sequence payload.
	runt := make([]byte, headerSize+2)
	runt[0] = recCommit
	binary.BigEndian.PutUint32(runt[5:9], 2)
	f.Add(sealRecord(runt))
	// Implausible declared length.
	huge := make([]byte, headerSize)
	huge[0] = recPage
	binary.BigEndian.PutUint32(huge[5:9], 1<<30)
	f.Add(huge)
	// A batch with pages but no commit marker.
	f.Add(record(recPage, 1, bytes.Repeat([]byte{2}, pager.PageSize)))

	f.Fuzz(func(t *testing.T, data []byte) {
		bf := pager.NewMemByteFile()
		if _, err := bf.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		l, err := OpenBacking(bf)
		if err != nil {
			t.Fatal(err)
		}
		file := pager.NewMemFile()
		info, err := l.Recover(file)
		if err != nil {
			return // structured rejection is fine; panics are not
		}
		if info.Replayed < 0 || info.ValidTo > int64(len(data)) {
			t.Fatalf("implausible recovery info %+v for %d input bytes", info, len(data))
		}
		if l.Size() != 0 {
			t.Fatal("log not truncated after successful recovery")
		}
		// Idempotence: recovering the now-empty log replays nothing.
		info2, err := l.Recover(file)
		if err != nil || info2.Replayed != 0 {
			t.Fatalf("second recovery = %+v, %v", info2, err)
		}
	})
}
