// Package wal implements a commit journal (write-ahead log) of page images
// with REDO recovery.
//
// The protocol pairs with the no-steal buffer pool in internal/pager:
// uncommitted pages never reach the database file, so the log only needs
// REDO information. At commit, the images of all dirty pages are appended
// followed by a commit record, and the log is synced; the pool may then
// lazily write the pages to the database file. Recovery replays every
// complete committed batch in order and truncates the log. A checkpoint
// (flush all pages + sync + truncate) bounds log growth.
//
// Commits are grouped (DeWitt et al., "Implementation Techniques for Main
// Memory Database Systems"): committers Enqueue their encoded batches and
// Wait; the first waiter through the flush lock becomes the leader and
// makes every queued batch durable with a single WriteAt + Sync. A lone
// committer pays exactly the old cost (one write, one sync); concurrent
// committers share a sync, which Stats reports as FsyncsSaved.
//
// Failure semantics: a failed append or fsync poisons the log — every
// subsequent Commit fails with an error wrapping ErrPoisoned instead of
// silently journaling past a hole of unknown durability (the "fsyncgate"
// lesson: after one failed fsync the page cache may have dropped the dirty
// data, so retrying the sync can falsely succeed). Truncate clears the
// poison, because it discards the bytes of unknown state; the store layer
// only truncates after making the database file durable by other means.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"sim/internal/obs"
	"sim/internal/pager"
)

// Record kinds.
const (
	recPage   = 1
	recCommit = 2
)

// header: kind(1) pageID(4) payloadLen(4) crc(4) = 13 bytes, then payload.
const headerSize = 13

// ErrPoisoned is wrapped by every Commit rejected because an earlier
// append or fsync failed, leaving the log tail in an unknown durable
// state. Reopening the log (which re-runs recovery) or truncating it
// clears the condition.
var ErrPoisoned = errors.New("wal: log poisoned by an earlier append/sync failure")

// Stats reports WAL activity since the log was opened.
type Stats struct {
	Commits   uint64 // committed batches journaled
	Pages     uint64 // page images appended
	Bytes     uint64 // bytes appended
	SizeBytes int64  // current log length
	Salvages  uint64 // torn tails truncated during recovery
	Syncs     uint64 // fsyncs performed (one per commit group)
	GroupMax  uint64 // largest commit group synced so far
}

// FsyncsSaved reports how many fsyncs group commit avoided: the commits
// that rode a group leader's sync instead of paying their own.
func (s Stats) FsyncsSaved() uint64 {
	if s.Commits < s.Syncs {
		return 0
	}
	return s.Commits - s.Syncs
}

// RecoverInfo describes one recovery pass.
type RecoverInfo struct {
	Replayed  int   // page images written back to the database file
	Commits   int   // committed groups replayed (a group is ≥1 batch)
	Salvaged  bool  // a torn/corrupt tail was detected and discarded
	ValidTo   int64 // byte offset of the last complete committed batch
	Discarded int64 // torn-tail bytes discarded past ValidTo
}

// Log is an append-only commit journal with group commit: concurrent
// committers enqueue their page batches and the first of them to reach
// the flush lock becomes the leader, merging the whole queue into one
// WAL transaction (deduplicated page images + a single commit record)
// made durable with a single WriteAt + Sync. The counters are atomics so
// Stats and metric collection are safe while commits run.
type Log struct {
	f    pager.ByteFile
	size atomic.Int64

	mu     sync.Mutex // guards poison state
	poison error      // non-nil after a failed append/sync

	qmu   sync.Mutex // guards the queue
	queue []*pendingCommit

	flushMu  sync.Mutex                     // held by the group leader during write+sync
	seq      uint64                         // group sequence number; guarded by flushMu
	onCommit func(CommitGroup) uint64       // replication hook; guarded by flushMu
	latch    *obs.Latch                     // leader hand-off contention (always on)
	flight   atomic.Pointer[obs.FlightRing] // flush events; set by RegisterMetrics

	commits  atomic.Uint64
	pages    atomic.Uint64
	bytes    atomic.Uint64
	salvages atomic.Uint64
	syncs    atomic.Uint64
	groupMax atomic.Uint64
}

// CommitGroup is one durable flush group as seen by the commit hook: the
// deduplicated page images in first-touched order, and the request IDs of
// the commits merged into the group (untraced commits contribute no ID).
type CommitGroup struct {
	Images []pager.PageImage
	IDs    []uint64
}

// pendingCommit is one enqueued batch awaiting its group's fsync. The
// frames are encoded by the group leader at flush time, which lets the
// leader merge the whole group into one WAL transaction (see flush). done
// and err are written by the leader under flushMu and read by the owner
// under flushMu, so no further synchronization is needed; the same
// ordering covers the trace fields the leader fills in.
type pendingCommit struct {
	frames []*pager.Frame
	id     uint64           // request ID, 0 = untraced
	ct     *obs.CommitTrace // commit spans to fill, nil when not requested
	enq    time.Time        // Enqueue time, for the enqueue-wait span
	done   bool
	err    error
}

// Pending is a committer's handle on its enqueued batch; Wait blocks until
// the batch is durable (or its group's flush failed).
type Pending struct {
	l  *Log
	pc *pendingCommit
}

// Open opens (creating if necessary) the log at path.
func Open(path string) (*Log, error) {
	f, err := pager.OpenOSByteFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l, err := OpenBacking(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// OpenBacking opens a log over arbitrary byte storage: the path every
// durable database takes via Open, and the hook the fault-injection
// harness uses to script append/sync failures and crashes.
func OpenBacking(f pager.ByteFile) (*Log, error) {
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("wal: size: %w", err)
	}
	l := &Log{f: f, latch: obs.NewLatch("wal_flush")}
	l.size.Store(size)
	return l, nil
}

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

// Size returns the current log length in bytes.
func (l *Log) Size() int64 { return l.size.Load() }

// Poisoned returns the poisoning cause, or nil while the log is healthy.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poison
}

// setPoison records the first failure; later failures keep the original
// cause.
func (l *Log) setPoison(err error) {
	l.mu.Lock()
	if l.poison == nil {
		l.poison = err
	}
	l.mu.Unlock()
}

// Stats returns the log's counters; safe to call while commits run.
func (l *Log) Stats() Stats {
	return Stats{
		Commits:   l.commits.Load(),
		Pages:     l.pages.Load(),
		Bytes:     l.bytes.Load(),
		SizeBytes: l.size.Load(),
		Salvages:  l.salvages.Load(),
		Syncs:     l.syncs.Load(),
		GroupMax:  l.groupMax.Load(),
	}
}

// RegisterMetrics publishes the log's counters on an obs registry.
func (l *Log) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sim_wal_commits_total", "Committed batches journaled to the WAL.",
		func() float64 { return float64(l.commits.Load()) })
	r.CounterFunc("sim_wal_pages_total", "Page images appended to the WAL.",
		func() float64 { return float64(l.pages.Load()) })
	r.CounterFunc("sim_wal_bytes_total", "Bytes appended to the WAL.",
		func() float64 { return float64(l.bytes.Load()) })
	r.GaugeFunc("sim_wal_size_bytes", "Current WAL length (truncated at checkpoints).",
		func() float64 { return float64(l.size.Load()) })
	r.CounterFunc("sim_wal_salvage_truncations_total", "Torn or corrupt WAL tails discarded during recovery.",
		func() float64 { return float64(l.salvages.Load()) })
	r.CounterFunc("sim_wal_syncs_total", "Fsyncs performed; one per commit group, not per commit.",
		func() float64 { return float64(l.syncs.Load()) })
	r.CounterFunc("sim_wal_fsyncs_saved_total", "Commits that rode a group leader's fsync instead of paying their own.",
		func() float64 { return float64(l.Stats().FsyncsSaved()) })
	r.GaugeFunc("sim_wal_group_max_commits", "Largest commit group fsynced so far.",
		func() float64 { return float64(l.groupMax.Load()) })
	r.GaugeFunc("sim_wal_poisoned", "1 after a failed append/fsync has poisoned the log, else 0.",
		func() float64 {
			if l.Poisoned() != nil {
				return 1
			}
			return 0
		})
	l.latch.Register(r, "WAL group-commit leader hand-off.")
	ring := r.Flight().Component("wal")
	l.flight.Store(ring)
	// Recovery runs before metrics registration, so salvages that happened
	// at open time are surfaced as a catch-up event.
	if n := l.salvages.Load(); n > 0 {
		ring.Event("wal", "salvage", 0, 0, int64(n), "torn tail discarded during recovery")
	}
}

func record(kind byte, pageID pager.PageID, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	buf[0] = kind
	binary.BigEndian.PutUint32(buf[1:5], uint32(pageID))
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	crc := crc32.ChecksumIEEE(buf[0:9])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.BigEndian.PutUint32(buf[9:13], crc)
	return buf
}

// Commit durably journals the given page frames as one atomic batch:
// Enqueue followed by Wait. A single committer behaves exactly as before
// group commit — one WriteAt and one Sync per batch. After any append or
// sync failure the log is poisoned: the failed batch is not acknowledged
// (it may or may not survive a crash, depending on how many of its bytes
// reached the disk), and every later Commit fails with ErrPoisoned until
// the log is truncated or reopened.
func (l *Log) Commit(frames []*pager.Frame) error {
	return l.Enqueue(frames).Wait()
}

// Enqueue appends the batch to the commit queue. It never blocks on I/O;
// the batch becomes durable when some committer's Wait flushes the group
// containing it. Batches are flushed in enqueue order, so callers that
// must preserve commit order (the store's commit pipeline) serialize
// their Enqueue calls. The frame images must stay unchanged until Wait
// returns (the store passes detached snapshot copies).
func (l *Log) Enqueue(frames []*pager.Frame) *Pending {
	return l.EnqueueTraced(frames, 0, nil)
}

// EnqueueTraced is Enqueue with trace context: id names the request the
// batch commits for (it rides into the replication group and the flight
// recorder), and ct, when non-nil, receives the group-commit spans —
// enqueue-wait, fsync, group size, replication position — once the batch
// is durable. ct must not be read until Wait returns.
func (l *Log) EnqueueTraced(frames []*pager.Frame, id uint64, ct *obs.CommitTrace) *Pending {
	pc := &pendingCommit{frames: frames, id: id, ct: ct, enq: time.Now()}
	l.qmu.Lock()
	l.queue = append(l.queue, pc)
	l.qmu.Unlock()
	return &Pending{l: l, pc: pc}
}

// Wait blocks until the enqueued batch is durable. The first waiter to
// take the flush lock becomes the leader: it drains the whole queue and
// makes it durable with one WriteAt and one Sync, then reports the result
// to every member. Waiters arriving while a flush is in flight form the
// next group — that overlap is where fsyncs are saved.
func (p *Pending) Wait() error {
	l := p.l
	if l.flushMu.TryLock() {
		l.latch.Acquired()
	} else {
		start := time.Now()
		l.flushMu.Lock()
		l.latch.Waited(time.Since(start))
	}
	defer l.flushMu.Unlock()
	if !p.pc.done {
		l.qmu.Lock()
		batch := l.queue
		l.queue = nil
		l.qmu.Unlock()
		l.flush(batch)
	}
	return p.pc.err
}

// flush makes one group of batches durable; called with flushMu held.
// The group is written as a single WAL transaction: one image per
// distinct page — the group's last image of it wins — followed by one
// commit record. Deduplication keeps the bytes fsynced proportional to
// the pages the group touched rather than to the number of committers
// (concurrent committers re-dirty the same hot pages), which matters
// because fsync cost grows with the bytes written. It is sound because
// acknowledgment is all-or-nothing: every member's Wait returns only
// after the shared Sync, so a crash that tears the group loses only
// unacknowledged commits, and replay applies the group atomically at its
// commit record. A poisoned log, a failed append or a failed sync fails
// every member of the group: none of them were acknowledged, so none are
// lost.
func (l *Log) flush(batch []*pendingCommit) {
	pickup := time.Now()
	fail := func(err error) {
		for _, pc := range batch {
			pc.done = true
			pc.err = err
		}
	}
	if err := l.Poisoned(); err != nil {
		fail(fmt.Errorf("%w (cause: %v)", ErrPoisoned, err))
		return
	}
	// Last image of each page wins; emit in first-touched order.
	var order []pager.PageID
	last := make(map[pager.PageID][]byte)
	npages := 0
	for _, pc := range batch {
		npages += len(pc.frames)
		for _, fr := range pc.frames {
			if _, seen := last[fr.ID]; !seen {
				order = append(order, fr.ID)
			}
			last[fr.ID] = fr.Data
		}
	}
	var buf []byte
	for _, id := range order {
		buf = append(buf, record(recPage, id, last[id])...)
	}
	l.seq++
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], l.seq)
	buf = append(buf, record(recCommit, 0, seqb[:])...)
	ioStart := time.Now()
	if _, err := l.f.WriteAt(buf, l.size.Load()); err != nil {
		l.setPoison(err)
		fail(fmt.Errorf("wal: append: %w", err))
		return
	}
	if err := l.f.Sync(); err != nil {
		l.setPoison(err)
		fail(fmt.Errorf("wal: sync: %w", err))
		return
	}
	syncDur := time.Since(ioStart)
	l.size.Add(int64(len(buf)))
	l.commits.Add(uint64(len(batch)))
	l.bytes.Add(uint64(len(buf)))
	l.pages.Add(uint64(npages))
	l.syncs.Add(1)
	if n := uint64(len(batch)); n > l.groupMax.Load() {
		l.groupMax.Store(n)
	}
	for _, pc := range batch {
		pc.done = true
	}
	var ids []uint64
	for _, pc := range batch {
		if pc.id != 0 {
			ids = append(ids, pc.id)
		}
	}
	var pos uint64
	if l.onCommit != nil {
		images := make([]pager.PageImage, len(order))
		for i, id := range order {
			images[i] = pager.PageImage{ID: id, Data: last[id]}
		}
		pos = l.onCommit(CommitGroup{Images: images, IDs: ids})
	}
	for _, pc := range batch {
		if pc.ct != nil {
			pc.ct.EnqueueWait = pickup.Sub(pc.enq)
			pc.ct.Fsync = syncDur
			pc.ct.GroupN = len(batch)
			pc.ct.Pos = pos
		}
	}
	var fid uint64
	if len(ids) > 0 {
		fid = ids[0]
	}
	l.flight.Load().Record(obs.FlightEvent{
		Comp: "wal", Kind: "flush", ID: fid, Pos: pos, Dur: syncDur,
		N: int64(len(batch)), Note: fmt.Sprintf("pages=%d", len(order)),
	})
}

// SetOnCommit installs a hook invoked after every commit group becomes
// durable, with the group's deduplicated page images in first-touched
// order plus the request IDs that rode the group. Hooks run under the
// flush lock, so they observe groups in commit order; they must be fast
// (they extend the commit path) and must copy the image bytes before
// returning — the Data slices alias the committers' snapshot buffers.
// The returned value is the replication position the group published at
// (0 when unreplicated), copied into each member's CommitTrace. The
// replication publisher is the only intended client.
func (l *Log) SetOnCommit(fn func(CommitGroup) uint64) {
	l.flushMu.Lock()
	l.onCommit = fn
	l.flushMu.Unlock()
}

// Truncate discards the log contents; call only after a checkpoint has made
// the database file current and no commits are in flight (the store drains
// its commit pipeline first). Discarding the bytes of unknown durability is
// what makes it safe to clear the poison here.
func (l *Log) Truncate() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size.Store(0)
	l.seq = 0
	l.mu.Lock()
	l.poison = nil
	l.mu.Unlock()
	return nil
}

// Recover replays every complete committed batch into file, then syncs it
// and truncates the log. A torn tail — an incomplete batch, a half-written
// record, or a corrupt one — is salvaged: replay stops at the last
// complete committed batch (the reported ValidTo offset), the tail past it
// is discarded, and the salvage is counted. This implements atomic commit
// across crashes at arbitrary write boundaries.
func (l *Log) Recover(file pager.File) (RecoverInfo, error) {
	var info RecoverInfo
	if l.size.Load() == 0 {
		return info, nil
	}
	r := io.NewSectionReader(l.f, 0, l.size.Load())

	type img struct {
		id   pager.PageID
		data []byte
	}
	var pending []img
	var offset int64 // bytes consumed including the current record
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			break // clean EOF or torn header: stop
		}
		kind := hdr[0]
		pageID := pager.PageID(binary.BigEndian.Uint32(hdr[1:5]))
		plen := binary.BigEndian.Uint32(hdr[5:9])
		want := binary.BigEndian.Uint32(hdr[9:13])
		if plen > 1<<24 {
			break // implausible length: torn record
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		crc := crc32.ChecksumIEEE(hdr[0:9])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != want {
			break
		}
		offset += int64(headerSize) + int64(plen)
		switch kind {
		case recPage:
			if len(payload) != pager.PageSize {
				return info, fmt.Errorf("wal: page record with %d bytes", len(payload))
			}
			pending = append(pending, img{pageID, payload})
		case recCommit:
			if len(payload) != 8 {
				return info, fmt.Errorf("wal: commit record with %d-byte sequence", len(payload))
			}
			for _, im := range pending {
				if err := file.WritePage(im.id, im.data); err != nil {
					return info, fmt.Errorf("wal: replay page %d: %w", im.id, err)
				}
				info.Replayed++
			}
			info.Commits++
			pending = pending[:0]
			info.ValidTo = offset
			l.seq = binary.BigEndian.Uint64(payload)
		default:
			return info, fmt.Errorf("wal: unknown record kind %d", kind)
		}
	}
	if info.ValidTo < l.size.Load() {
		info.Salvaged = true
		info.Discarded = l.size.Load() - info.ValidTo
		l.salvages.Add(1)
	}
	if info.Replayed > 0 {
		if err := file.Sync(); err != nil {
			return info, err
		}
	}
	return info, l.Truncate()
}
