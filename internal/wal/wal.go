// Package wal implements a commit journal (write-ahead log) of page images
// with REDO recovery.
//
// The protocol pairs with the no-steal buffer pool in internal/pager:
// uncommitted pages never reach the database file, so the log only needs
// REDO information. At commit, the images of all dirty pages are appended
// followed by a commit record, and the log is synced; the pool may then
// lazily write the pages to the database file. Recovery replays every
// complete committed batch in order and truncates the log. A checkpoint
// (flush all pages + sync + truncate) bounds log growth.
//
// Failure semantics: a failed append or fsync poisons the log — every
// subsequent Commit fails with an error wrapping ErrPoisoned instead of
// silently journaling past a hole of unknown durability (the "fsyncgate"
// lesson: after one failed fsync the page cache may have dropped the dirty
// data, so retrying the sync can falsely succeed). Truncate clears the
// poison, because it discards the bytes of unknown state; the store layer
// only truncates after making the database file durable by other means.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"sim/internal/obs"
	"sim/internal/pager"
)

// Record kinds.
const (
	recPage   = 1
	recCommit = 2
)

// header: kind(1) pageID(4) payloadLen(4) crc(4) = 13 bytes, then payload.
const headerSize = 13

// ErrPoisoned is wrapped by every Commit rejected because an earlier
// append or fsync failed, leaving the log tail in an unknown durable
// state. Reopening the log (which re-runs recovery) or truncating it
// clears the condition.
var ErrPoisoned = errors.New("wal: log poisoned by an earlier append/sync failure")

// Stats reports WAL activity since the log was opened.
type Stats struct {
	Commits   uint64 // committed batches journaled
	Pages     uint64 // page images appended
	Bytes     uint64 // bytes appended
	SizeBytes int64  // current log length
	Salvages  uint64 // torn tails truncated during recovery
}

// RecoverInfo describes one recovery pass.
type RecoverInfo struct {
	Replayed  int   // page images written back to the database file
	Commits   int   // committed batches replayed
	Salvaged  bool  // a torn/corrupt tail was detected and discarded
	ValidTo   int64 // byte offset of the last complete committed batch
	Discarded int64 // torn-tail bytes discarded past ValidTo
}

// Log is an append-only commit journal. The counters are atomics so
// Stats and metric collection are safe while the single writer commits.
type Log struct {
	f    pager.ByteFile
	size atomic.Int64
	seq  uint64 // commit sequence number

	mu     sync.Mutex // guards poison state
	poison error      // non-nil after a failed append/sync

	commits  atomic.Uint64
	pages    atomic.Uint64
	bytes    atomic.Uint64
	salvages atomic.Uint64
}

// Open opens (creating if necessary) the log at path.
func Open(path string) (*Log, error) {
	f, err := pager.OpenOSByteFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l, err := OpenBacking(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// OpenBacking opens a log over arbitrary byte storage: the path every
// durable database takes via Open, and the hook the fault-injection
// harness uses to script append/sync failures and crashes.
func OpenBacking(f pager.ByteFile) (*Log, error) {
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("wal: size: %w", err)
	}
	l := &Log{f: f}
	l.size.Store(size)
	return l, nil
}

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

// Size returns the current log length in bytes.
func (l *Log) Size() int64 { return l.size.Load() }

// Poisoned returns the poisoning cause, or nil while the log is healthy.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poison
}

// setPoison records the first failure; later failures keep the original
// cause.
func (l *Log) setPoison(err error) {
	l.mu.Lock()
	if l.poison == nil {
		l.poison = err
	}
	l.mu.Unlock()
}

// Stats returns the log's counters; safe to call while commits run.
func (l *Log) Stats() Stats {
	return Stats{
		Commits:   l.commits.Load(),
		Pages:     l.pages.Load(),
		Bytes:     l.bytes.Load(),
		SizeBytes: l.size.Load(),
		Salvages:  l.salvages.Load(),
	}
}

// RegisterMetrics publishes the log's counters on an obs registry.
func (l *Log) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sim_wal_commits_total", "Committed batches journaled to the WAL.",
		func() float64 { return float64(l.commits.Load()) })
	r.CounterFunc("sim_wal_pages_total", "Page images appended to the WAL.",
		func() float64 { return float64(l.pages.Load()) })
	r.CounterFunc("sim_wal_bytes_total", "Bytes appended to the WAL.",
		func() float64 { return float64(l.bytes.Load()) })
	r.GaugeFunc("sim_wal_size_bytes", "Current WAL length (truncated at checkpoints).",
		func() float64 { return float64(l.size.Load()) })
	r.CounterFunc("sim_wal_salvage_truncations_total", "Torn or corrupt WAL tails discarded during recovery.",
		func() float64 { return float64(l.salvages.Load()) })
	r.GaugeFunc("sim_wal_poisoned", "1 after a failed append/fsync has poisoned the log, else 0.",
		func() float64 {
			if l.Poisoned() != nil {
				return 1
			}
			return 0
		})
}

func record(kind byte, pageID pager.PageID, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	buf[0] = kind
	binary.BigEndian.PutUint32(buf[1:5], uint32(pageID))
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	crc := crc32.ChecksumIEEE(buf[0:9])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.BigEndian.PutUint32(buf[9:13], crc)
	return buf
}

// Commit durably journals the given page frames as one atomic batch. After
// any append or sync failure the log is poisoned: the failed batch is not
// acknowledged (it may or may not survive a crash, depending on how many
// of its bytes reached the disk), and every later Commit fails with
// ErrPoisoned until the log is truncated or reopened.
func (l *Log) Commit(frames []*pager.Frame) error {
	if err := l.Poisoned(); err != nil {
		return fmt.Errorf("%w (cause: %v)", ErrPoisoned, err)
	}
	var buf []byte
	for _, fr := range frames {
		buf = append(buf, record(recPage, fr.ID, fr.Data)...)
	}
	l.seq++
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], l.seq)
	buf = append(buf, record(recCommit, 0, seqb[:])...)
	if _, err := l.f.WriteAt(buf, l.size.Load()); err != nil {
		l.setPoison(err)
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.setPoison(err)
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.size.Add(int64(len(buf)))
	l.commits.Add(1)
	l.pages.Add(uint64(len(frames)))
	l.bytes.Add(uint64(len(buf)))
	return nil
}

// Truncate discards the log contents; call only after a checkpoint has made
// the database file current. Discarding the bytes of unknown durability is
// what makes it safe to clear the poison here.
func (l *Log) Truncate() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size.Store(0)
	l.seq = 0
	l.mu.Lock()
	l.poison = nil
	l.mu.Unlock()
	return nil
}

// Recover replays every complete committed batch into file, then syncs it
// and truncates the log. A torn tail — an incomplete batch, a half-written
// record, or a corrupt one — is salvaged: replay stops at the last
// complete committed batch (the reported ValidTo offset), the tail past it
// is discarded, and the salvage is counted. This implements atomic commit
// across crashes at arbitrary write boundaries.
func (l *Log) Recover(file pager.File) (RecoverInfo, error) {
	var info RecoverInfo
	if l.size.Load() == 0 {
		return info, nil
	}
	r := io.NewSectionReader(l.f, 0, l.size.Load())

	type img struct {
		id   pager.PageID
		data []byte
	}
	var pending []img
	var offset int64 // bytes consumed including the current record
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			break // clean EOF or torn header: stop
		}
		kind := hdr[0]
		pageID := pager.PageID(binary.BigEndian.Uint32(hdr[1:5]))
		plen := binary.BigEndian.Uint32(hdr[5:9])
		want := binary.BigEndian.Uint32(hdr[9:13])
		if plen > 1<<24 {
			break // implausible length: torn record
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		crc := crc32.ChecksumIEEE(hdr[0:9])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != want {
			break
		}
		offset += int64(headerSize) + int64(plen)
		switch kind {
		case recPage:
			if len(payload) != pager.PageSize {
				return info, fmt.Errorf("wal: page record with %d bytes", len(payload))
			}
			pending = append(pending, img{pageID, payload})
		case recCommit:
			if len(payload) != 8 {
				return info, fmt.Errorf("wal: commit record with %d-byte sequence", len(payload))
			}
			for _, im := range pending {
				if err := file.WritePage(im.id, im.data); err != nil {
					return info, fmt.Errorf("wal: replay page %d: %w", im.id, err)
				}
				info.Replayed++
			}
			info.Commits++
			pending = pending[:0]
			info.ValidTo = offset
			l.seq = binary.BigEndian.Uint64(payload)
		default:
			return info, fmt.Errorf("wal: unknown record kind %d", kind)
		}
	}
	if info.ValidTo < l.size.Load() {
		info.Salvaged = true
		info.Discarded = l.size.Load() - info.ValidTo
		l.salvages.Add(1)
	}
	if info.Replayed > 0 {
		if err := file.Sync(); err != nil {
			return info, err
		}
	}
	return info, l.Truncate()
}
