// Package wal implements a commit journal (write-ahead log) of page images
// with REDO recovery.
//
// The protocol pairs with the no-steal buffer pool in internal/pager:
// uncommitted pages never reach the database file, so the log only needs
// REDO information. At commit, the images of all dirty pages are appended
// followed by a commit record, and the log is synced; the pool may then
// lazily write the pages to the database file. Recovery replays every
// complete committed batch in order and truncates the log. A checkpoint
// (flush all pages + sync + truncate) bounds log growth.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"sim/internal/obs"
	"sim/internal/pager"
)

// Record kinds.
const (
	recPage   = 1
	recCommit = 2
)

// header: kind(1) pageID(4) payloadLen(4) crc(4) = 13 bytes, then payload.
const headerSize = 13

// Stats reports WAL activity since the log was opened.
type Stats struct {
	Commits   uint64 // committed batches journaled
	Pages     uint64 // page images appended
	Bytes     uint64 // bytes appended
	SizeBytes int64  // current log length
}

// Log is an append-only commit journal. The counters are atomics so
// Stats and metric collection are safe while the single writer commits.
type Log struct {
	f    *os.File
	size atomic.Int64
	seq  uint64 // commit sequence number

	commits atomic.Uint64
	pages   atomic.Uint64
	bytes   atomic.Uint64
}

// Open opens (creating if necessary) the log at path.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{f: f}
	l.size.Store(st.Size())
	return l, nil
}

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

// Size returns the current log length in bytes.
func (l *Log) Size() int64 { return l.size.Load() }

// Stats returns the log's counters; safe to call while commits run.
func (l *Log) Stats() Stats {
	return Stats{
		Commits:   l.commits.Load(),
		Pages:     l.pages.Load(),
		Bytes:     l.bytes.Load(),
		SizeBytes: l.size.Load(),
	}
}

// RegisterMetrics publishes the log's counters on an obs registry.
func (l *Log) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sim_wal_commits_total", "Committed batches journaled to the WAL.",
		func() float64 { return float64(l.commits.Load()) })
	r.CounterFunc("sim_wal_pages_total", "Page images appended to the WAL.",
		func() float64 { return float64(l.pages.Load()) })
	r.CounterFunc("sim_wal_bytes_total", "Bytes appended to the WAL.",
		func() float64 { return float64(l.bytes.Load()) })
	r.GaugeFunc("sim_wal_size_bytes", "Current WAL length (truncated at checkpoints).",
		func() float64 { return float64(l.size.Load()) })
}

func record(kind byte, pageID pager.PageID, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	buf[0] = kind
	binary.BigEndian.PutUint32(buf[1:5], uint32(pageID))
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	crc := crc32.ChecksumIEEE(buf[0:9])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.BigEndian.PutUint32(buf[9:13], crc)
	return buf
}

// Commit durably journals the given page frames as one atomic batch.
func (l *Log) Commit(frames []*pager.Frame) error {
	var buf []byte
	for _, fr := range frames {
		buf = append(buf, record(recPage, fr.ID, fr.Data)...)
	}
	l.seq++
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], l.seq)
	buf = append(buf, record(recCommit, 0, seqb[:])...)
	if _, err := l.f.WriteAt(buf, l.size.Load()); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.size.Add(int64(len(buf)))
	l.commits.Add(1)
	l.pages.Add(uint64(len(frames)))
	l.bytes.Add(uint64(len(buf)))
	return nil
}

// Truncate discards the log contents; call only after a checkpoint has made
// the database file current.
func (l *Log) Truncate() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size.Store(0)
	l.seq = 0
	return nil
}

// Recover replays every complete committed batch into file, then syncs it
// and truncates the log. A torn tail (incomplete batch or corrupt record)
// is ignored, implementing atomic commit.
func (l *Log) Recover(file pager.File) (replayed int, err error) {
	if l.size.Load() == 0 {
		return 0, nil
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := io.LimitReader(l.f, l.size.Load())

	type img struct {
		id   pager.PageID
		data []byte
	}
	var pending []img
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			break // clean EOF or torn header: stop
		}
		kind := hdr[0]
		pageID := pager.PageID(binary.BigEndian.Uint32(hdr[1:5]))
		plen := binary.BigEndian.Uint32(hdr[5:9])
		want := binary.BigEndian.Uint32(hdr[9:13])
		if plen > 1<<24 {
			break // implausible length: torn record
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		crc := crc32.ChecksumIEEE(hdr[0:9])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != want {
			break
		}
		switch kind {
		case recPage:
			if len(payload) != pager.PageSize {
				return replayed, fmt.Errorf("wal: page record with %d bytes", len(payload))
			}
			pending = append(pending, img{pageID, payload})
		case recCommit:
			for _, im := range pending {
				if err := file.WritePage(im.id, im.data); err != nil {
					return replayed, fmt.Errorf("wal: replay page %d: %w", im.id, err)
				}
				replayed++
			}
			pending = pending[:0]
			l.seq = binary.BigEndian.Uint64(payload)
		default:
			return replayed, fmt.Errorf("wal: unknown record kind %d", kind)
		}
	}
	if replayed > 0 {
		if err := file.Sync(); err != nil {
			return replayed, err
		}
	}
	return replayed, l.Truncate()
}
