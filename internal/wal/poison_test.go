package wal

import (
	"errors"
	"testing"

	"sim/internal/pager"
)

// flakyFile injects one-shot failures into an in-memory ByteFile.
type flakyFile struct {
	*pager.MemByteFile
	failNextSync  error
	failNextWrite error
}

func (f *flakyFile) Sync() error {
	if err := f.failNextSync; err != nil {
		f.failNextSync = nil
		return err
	}
	return f.MemByteFile.Sync()
}

func (f *flakyFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.failNextWrite; err != nil {
		f.failNextWrite = nil
		return 0, err
	}
	return f.MemByteFile.WriteAt(p, off)
}

// A failed fsync must poison the log: the next commit is refused with
// ErrPoisoned even though the underlying file has recovered (fsyncgate).
func TestFailedSyncPoisonsLog(t *testing.T) {
	ff := &flakyFile{MemByteFile: pager.NewMemByteFile()}
	l, err := OpenBacking(ff)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit([]*pager.Frame{frame(1, 0x01)}); err != nil {
		t.Fatal(err)
	}

	cause := errors.New("disk on fire")
	ff.failNextSync = cause
	if err := l.Commit([]*pager.Frame{frame(2, 0x02)}); !errors.Is(err, cause) {
		t.Fatalf("failing commit error = %v, want the sync cause", err)
	}
	if l.Poisoned() == nil {
		t.Fatal("log not poisoned after failed sync")
	}
	// The file is healthy again, but the log must refuse to continue.
	if err := l.Commit([]*pager.Frame{frame(3, 0x03)}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("commit after poison = %v, want ErrPoisoned", err)
	}
	if got := l.Stats().Commits; got != 1 {
		t.Errorf("commits counted = %d, want 1", got)
	}

	// Truncate discards the tail of unknown durability and clears the
	// poison; commits may resume.
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Poisoned() != nil {
		t.Error("poison survived Truncate")
	}
	if err := l.Commit([]*pager.Frame{frame(4, 0x04)}); err != nil {
		t.Fatalf("commit after truncate: %v", err)
	}
}

func TestFailedAppendPoisonsLog(t *testing.T) {
	ff := &flakyFile{MemByteFile: pager.NewMemByteFile()}
	l, err := OpenBacking(ff)
	if err != nil {
		t.Fatal(err)
	}
	ff.failNextWrite = errors.New("short write")
	if err := l.Commit([]*pager.Frame{frame(1, 0x01)}); err == nil {
		t.Fatal("commit with failing write succeeded")
	}
	if err := l.Commit([]*pager.Frame{frame(2, 0x02)}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("commit after failed append = %v, want ErrPoisoned", err)
	}
}

// Reopening the backing file yields a fresh, unpoisoned log whose recovery
// replays exactly the batches that were durably committed.
func TestReopenAfterPoisonRecovers(t *testing.T) {
	ff := &flakyFile{MemByteFile: pager.NewMemByteFile()}
	l, err := OpenBacking(ff)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit([]*pager.Frame{frame(1, 0x11)}); err != nil {
		t.Fatal(err)
	}
	ff.failNextSync = errors.New("transient")
	l.Commit([]*pager.Frame{frame(2, 0x22)}) // poisons; durability unknown

	l2, err := OpenBacking(ff.MemByteFile)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Poisoned() != nil {
		t.Fatal("fresh log born poisoned")
	}
	file := pager.NewMemFile()
	info, err := l2.Recover(file)
	if err != nil {
		t.Fatal(err)
	}
	// In this model the append reached the image, so both batches replay;
	// the guarantee under test is only that recovery yields a consistent
	// prefix without error.
	if info.Replayed < 1 {
		t.Errorf("recovery lost the first committed batch: %+v", info)
	}
	buf := make([]byte, pager.PageSize)
	if err := file.ReadPage(1, buf); err != nil || buf[0] != 0x11 {
		t.Errorf("page 1 = %x, %v", buf[0], err)
	}
}
