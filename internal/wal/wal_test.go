package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sim/internal/pager"
)

func frame(id pager.PageID, fill byte) *pager.Frame {
	f := &pager.Frame{ID: id, Data: make([]byte, pager.PageSize)}
	for i := range f.Data {
		f.Data[i] = fill
	}
	return f
}

func openLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func TestCommitAndRecover(t *testing.T) {
	l, _ := openLog(t)
	if err := l.Commit([]*pager.Frame{frame(1, 0x11), frame(2, 0x22)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit([]*pager.Frame{frame(1, 0x33)}); err != nil {
		t.Fatal(err)
	}
	file := pager.NewMemFile()
	info, err := l.Recover(file)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 3 {
		t.Errorf("replayed %d pages, want 3", info.Replayed)
	}
	if info.Commits != 2 || info.Salvaged {
		t.Errorf("info = %+v, want 2 clean commits", info)
	}
	buf := make([]byte, pager.PageSize)
	file.ReadPage(1, buf)
	if buf[0] != 0x33 {
		t.Errorf("page 1 = %x, want later image 0x33", buf[0])
	}
	file.ReadPage(2, buf)
	if buf[0] != 0x22 {
		t.Errorf("page 2 = %x", buf[0])
	}
	if l.Size() != 0 {
		t.Error("log not truncated after recovery")
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	l, _ := openLog(t)
	info, err := l.Recover(pager.NewMemFile())
	if err != nil || info.Replayed != 0 {
		t.Errorf("empty recover = %+v, %v", info, err)
	}
}

func TestTornTailIgnored(t *testing.T) {
	l, path := openLog(t)
	l.Commit([]*pager.Frame{frame(5, 0x55)})
	// Append half a record (a torn write at crash time).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{recPage, 0, 0, 0, 9})
	f.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	file := pager.NewMemFile()
	info, err := l2.Recover(file)
	if err != nil || info.Replayed != 1 {
		t.Fatalf("recover = %+v, %v; want 1 page", info, err)
	}
	if !info.Salvaged || info.Discarded != 5 {
		t.Errorf("salvage not reported: %+v", info)
	}
	if l2.Stats().Salvages != 1 {
		t.Errorf("salvage counter = %d", l2.Stats().Salvages)
	}
	buf := make([]byte, pager.PageSize)
	file.ReadPage(5, buf)
	if buf[0] != 0x55 {
		t.Error("committed batch lost")
	}
}

func TestUncommittedBatchDiscarded(t *testing.T) {
	l, path := openLog(t)
	l.Commit([]*pager.Frame{frame(1, 0xAA)})
	// Hand-append page records WITHOUT a commit marker.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	img := record(recPage, 9, bytes.Repeat([]byte{0xBB}, pager.PageSize))
	f.Write(img)
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	file := pager.NewMemFile()
	info, err := l2.Recover(file)
	if err != nil || info.Replayed != 1 {
		t.Fatalf("recover = %+v, %v; want only the committed page", info, err)
	}
	if np, _ := file.NumPages(); np > 2 {
		t.Errorf("uncommitted page written: file has %d pages", np)
	}
}

func TestCorruptCRCStopsReplay(t *testing.T) {
	l, path := openLog(t)
	l.Commit([]*pager.Frame{frame(1, 0x01)})
	l.Commit([]*pager.Frame{frame(2, 0x02)})
	// Flip a byte inside the second batch.
	data, _ := os.ReadFile(path)
	data[len(data)-20] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	file := pager.NewMemFile()
	info, err := l2.Recover(file)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 1 {
		t.Errorf("replayed %d pages past corruption, want 1", info.Replayed)
	}
	if !info.Salvaged {
		t.Error("corrupt tail not reported as salvaged")
	}
}

func TestTruncate(t *testing.T) {
	l, path := openLog(t)
	l.Commit([]*pager.Frame{frame(1, 0x01)})
	if l.Size() == 0 {
		t.Fatal("log empty after commit")
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if fi.Size() != 0 || l.Size() != 0 {
		t.Error("truncate left bytes behind")
	}
}

func TestCommitEmptyBatch(t *testing.T) {
	l, _ := openLog(t)
	if err := l.Commit(nil); err != nil {
		t.Fatal(err)
	}
	info, err := l.Recover(pager.NewMemFile())
	if err != nil || info.Replayed != 0 {
		t.Errorf("empty batch recover = %+v, %v", info, err)
	}
}
