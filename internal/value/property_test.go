package value

import (
	"math/rand"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// Tri obeys Kleene-algebra laws.
func TestTriKleeneLaws(t *testing.T) {
	tris := []Tri{False, Unknown, True}
	for _, a := range tris {
		if a.Not().Not() != a {
			t.Errorf("double negation broken for %v", a)
		}
		for _, b := range tris {
			// De Morgan.
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan (and) broken for %v,%v", a, b)
			}
			if a.Or(b).Not() != a.Not().And(b.Not()) {
				t.Errorf("De Morgan (or) broken for %v,%v", a, b)
			}
			for _, c := range tris {
				if a.And(b.And(c)) != a.And(b).And(c) {
					t.Errorf("and not associative")
				}
				if a.Or(b.Or(c)) != a.Or(b).Or(c) {
					t.Errorf("or not associative")
				}
				// Distribution.
				if a.And(b.Or(c)) != a.And(b).Or(a.And(c)) {
					t.Errorf("distribution broken")
				}
			}
		}
	}
}

// randomValue generates an arbitrary scalar for round-trip properties.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(8) {
	case 0:
		return Null
	case 1:
		return NewInt(r.Int63() - (1 << 62))
	case 2:
		return NewNumber(r.NormFloat64() * 1e6)
	case 3:
		b := make([]byte, r.Intn(40))
		r.Read(b)
		return NewString(string(b))
	case 4:
		return NewBool(r.Intn(2) == 0)
	case 5:
		return NewDate(int64(r.Intn(100000) - 20000))
	case 6:
		return NewSymbolic([]string{"A", "B", "C"}[r.Intn(3)], r.Intn(3))
	default:
		return NewSurrogate(Surrogate(r.Uint64() >> 1))
	}
}

// Property: encode/decode round-trips arbitrary rows.
func TestRowCodecProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 500; iter++ {
		n := r.Intn(12)
		row := make([]Value, n)
		for i := range row {
			row[i] = randomValue(r)
		}
		buf := AppendRow(nil, row)
		got, rest, err := DecodeRow(buf)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(rest) != 0 {
			t.Fatalf("iter %d: %d trailing bytes", iter, len(rest))
		}
		if len(got) != len(row) {
			t.Fatalf("iter %d: %d fields, want %d", iter, len(got), len(row))
		}
		for i := range row {
			if !got[i].Equal(row[i]) || got[i].Kind() != row[i].Kind() {
				t.Fatalf("iter %d field %d: %v (%v) != %v (%v)", iter, i, got[i], got[i].Kind(), row[i], row[i].Kind())
			}
		}
	}
}

// Property: Cmp.Apply is consistent with Compare on same-kind values.
func TestCmpConsistentWithCompare(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		n, err := Compare(va, vb)
		if err != nil {
			return false
		}
		lt, _ := CmpLT.Apply(va, vb)
		eq, _ := CmpEQ.Apply(va, vb)
		gt, _ := CmpGT.Apply(va, vb)
		return (n < 0) == lt.IsTrue() && (n == 0) == eq.IsTrue() && (n > 0) == gt.IsTrue()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: globMatch agrees with the equivalent regexp.
func TestGlobMatchesRegexp(t *testing.T) {
	alphabet := []rune{'a', 'b', '*', '?'}
	r := rand.New(rand.NewSource(5))
	randStr := func(maxLen int, runes []rune) string {
		n := r.Intn(maxLen)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune(runes[r.Intn(len(runes))])
		}
		return b.String()
	}
	for iter := 0; iter < 2000; iter++ {
		pat := randStr(8, alphabet)
		s := randStr(10, []rune{'a', 'b'})
		// Translate the glob to an anchored regexp.
		var re strings.Builder
		re.WriteString("^")
		for _, c := range pat {
			switch c {
			case '*':
				re.WriteString(".*")
			case '?':
				re.WriteString(".")
			default:
				re.WriteString(regexp.QuoteMeta(string(c)))
			}
		}
		re.WriteString("$")
		want := regexp.MustCompile(re.String()).MatchString(s)
		if got := globMatch(pat, s); got != want {
			t.Fatalf("globMatch(%q, %q) = %v, regexp says %v", pat, s, got, want)
		}
	}
}

// Property: key encoding order agrees with SortLess for arbitrary value
// pairs of the same kind.
func TestKeyOrderMatchesSortLess(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 3000; iter++ {
		a, b := randomValue(r), randomValue(r)
		// Only same-kind (or numeric) pairs have defined relative order.
		same := a.Kind() == b.Kind() ||
			(isNumericKind(a.Kind()) && isNumericKind(b.Kind()))
		if !same || a.IsNull() || b.IsNull() {
			continue
		}
		ka := AppendKey(nil, a)
		kb := AppendKey(nil, b)
		keyLess := string(ka) < string(kb)
		sortLess := SortLess(a, b)
		if keyLess != sortLess {
			t.Fatalf("order disagreement for %v (%v) vs %v (%v): key %v, SortLess %v",
				a, a.Kind(), b, b.Kind(), keyLess, sortLess)
		}
	}
}

func isNumericKind(k Kind) bool { return k == KindInt || k == KindNumber }

// quick.Value-driven encode round trip for strings with arbitrary bytes.
func TestStringEncodeQuick(t *testing.T) {
	f := func(s string) bool {
		v := NewString(s)
		buf := Append(nil, v)
		got, rest, err := Decode(buf)
		return err == nil && len(rest) == 0 && got.Kind() == KindString && got.Str() == s
	}
	cfg := &quick.Config{MaxCount: 300, Values: func(vals []reflect.Value, r *rand.Rand) {
		b := make([]byte, r.Intn(200))
		r.Read(b)
		vals[0] = reflect.ValueOf(string(b))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
