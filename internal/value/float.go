package value

import "math"

// Thin wrappers so encode.go reads without a direct math import at each
// call site.

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
