package value

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestTriTables(t *testing.T) {
	// Kleene truth tables.
	cases := []struct {
		a, b, and, or Tri
	}{
		{True, True, True, True},
		{True, False, False, True},
		{True, Unknown, Unknown, True},
		{False, False, False, False},
		{False, Unknown, False, Unknown},
		{Unknown, Unknown, Unknown, Unknown},
	}
	for _, c := range cases {
		if got := c.a.And(c.b); got != c.and {
			t.Errorf("%v AND %v = %v, want %v", c.a, c.b, got, c.and)
		}
		if got := c.b.And(c.a); got != c.and {
			t.Errorf("AND not commutative for %v,%v", c.a, c.b)
		}
		if got := c.a.Or(c.b); got != c.or {
			t.Errorf("%v OR %v = %v, want %v", c.a, c.b, got, c.or)
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("NOT table wrong")
	}
}

func TestCmpNullIsUnknown(t *testing.T) {
	for _, op := range []Cmp{CmpEQ, CmpNEQ, CmpLT, CmpLE, CmpGT, CmpGE} {
		got, err := op.Apply(Null, NewInt(1))
		if err != nil || got != Unknown {
			t.Errorf("NULL %v 1 = %v, %v; want unknown", op, got, err)
		}
		got, _ = op.Apply(NewInt(1), Null)
		if got != Unknown {
			t.Errorf("1 %v NULL = %v; want unknown", op, got)
		}
	}
}

func TestCmpMixedNumeric(t *testing.T) {
	got, err := CmpEQ.Apply(NewInt(3), NewNumber(3.0))
	if err != nil || got != True {
		t.Errorf("3 = 3.0 → %v, %v", got, err)
	}
	got, _ = CmpLT.Apply(NewInt(3), NewNumber(3.5))
	if got != True {
		t.Errorf("3 < 3.5 → %v", got)
	}
}

func TestCmpIncompatibleKinds(t *testing.T) {
	if _, err := CmpLT.Apply(NewInt(1), NewString("x")); err == nil {
		t.Error("integer < string did not error")
	}
	if _, err := CmpEQ.Apply(NewBool(true), NewString("t")); err == nil {
		t.Error("boolean = string did not error")
	}
}

func TestArithNullPropagates(t *testing.T) {
	for _, op := range []Arith{OpAdd, OpSub, OpMul, OpDiv} {
		v, err := op.Apply(Null, NewInt(2))
		if err != nil || !v.IsNull() {
			t.Errorf("NULL %v 2 = %v, %v", op, v, err)
		}
	}
}

func TestArithIntSemantics(t *testing.T) {
	v, _ := OpAdd.Apply(NewInt(2), NewInt(3))
	if v.Kind() != KindInt || v.Int() != 5 {
		t.Errorf("2+3 = %v (%v)", v, v.Kind())
	}
	// Division always yields a number.
	v, _ = OpDiv.Apply(NewInt(7), NewInt(2))
	if v.Kind() != KindNumber || v.Number() != 3.5 {
		t.Errorf("7/2 = %v (%v)", v, v.Kind())
	}
	if _, err := OpDiv.Apply(NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero did not error")
	}
}

func TestDateArith(t *testing.T) {
	d, _ := ParseDate("1988-06-01")
	d2, err := OpAdd.Apply(d, NewInt(30))
	if err != nil || d2.String() != "1988-07-01" {
		t.Errorf("date+30 = %v, %v", d2, err)
	}
	diff, err := OpSub.Apply(d2, d)
	if err != nil || diff.Int() != 30 {
		t.Errorf("date-date = %v, %v", diff, err)
	}
	if _, err := OpMul.Apply(d, NewInt(2)); err == nil {
		t.Error("date*2 did not error")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want Tri
	}{
		{"Quantum Chromodynamics", "Quantum*", True},
		{"Quantum", "Quantum", True},
		{"Quantum", "quantum", False},
		{"Algebra I", "Algebra ?", True},
		{"Algebra II", "Algebra ?", False},
		{"abc", "*b*", True},
		{"abc", "*d*", False},
		{"", "*", True},
		{"x", "", False},
	}
	for _, c := range cases {
		got, err := Like(NewString(c.s), NewString(c.p))
		if err != nil || got != c.want {
			t.Errorf("Like(%q,%q) = %v, %v; want %v", c.s, c.p, got, err, c.want)
		}
	}
	got, _ := Like(Null, NewString("x"))
	if got != Unknown {
		t.Error("Like(NULL, p) not unknown")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	vals := []Value{
		Null,
		NewInt(0), NewInt(-5), NewInt(1 << 40),
		NewNumber(3.25), NewNumber(-0.5), NewNumber(math.MaxFloat64),
		NewString(""), NewString("hello"), NewString("with \x00 zero"),
		NewBool(true), NewBool(false),
		NewDate(6726),
		NewSymbolic("PHD", 3),
		NewSurrogate(42),
	}
	var buf []byte
	for _, v := range vals {
		buf = Append(buf, v)
	}
	rest := buf
	for i, want := range vals {
		var got Value
		var err error
		got, rest, err = Decode(rest)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !got.Equal(want) || got.Kind() != want.Kind() {
			t.Errorf("round trip %d: got %v (%v), want %v (%v)", i, got, got.Kind(), want, want.Kind())
		}
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
}

func TestEncodeRowRoundTrip(t *testing.T) {
	row := []Value{NewInt(1), Null, NewString("x"), NewSymbolic("BS", 0)}
	buf := AppendRow(nil, row)
	got, rest, err := DecodeRow(buf)
	if err != nil || len(rest) != 0 || len(got) != len(row) {
		t.Fatalf("DecodeRow: %v %v %d", got, err, len(rest))
	}
	for i := range row {
		if !got[i].Equal(row[i]) {
			t.Errorf("field %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty decode succeeded")
	}
	if _, _, err := Decode([]byte{99}); err == nil {
		t.Error("bad tag decode succeeded")
	}
	if _, _, err := Decode([]byte{byte(KindString), 200}); err == nil {
		t.Error("truncated string decode succeeded")
	}
}

// Property: the key encoding preserves order for comparable values.
func TestKeyEncodingOrderInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka := AppendKey(nil, NewInt(a))
		kb := AppendKey(nil, NewInt(b))
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		}
		return cmp == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingOrderFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := AppendKey(nil, NewNumber(a))
		kb := AppendKey(nil, NewNumber(b))
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		}
		return cmp == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingOrderStrings(t *testing.T) {
	f := func(a, b string) bool {
		ka := AppendKey(nil, NewString(a))
		kb := AppendKey(nil, NewString(b))
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		}
		return cmp == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingMixedNumerics(t *testing.T) {
	// Int and Number interleave correctly.
	ka := AppendKey(nil, NewInt(3))
	kb := AppendKey(nil, NewNumber(3.5))
	kc := AppendKey(nil, NewInt(4))
	if !(bytes.Compare(ka, kb) < 0 && bytes.Compare(kb, kc) < 0) {
		t.Error("int/number key interleaving broken")
	}
	// Equal int and float encode identically.
	if !bytes.Equal(AppendKey(nil, NewInt(7)), AppendKey(nil, NewNumber(7))) {
		t.Error("7 and 7.0 encode differently")
	}
}

func TestKeyEncodingNullFirst(t *testing.T) {
	null := AppendKey(nil, Null)
	for _, v := range []Value{NewInt(math.MinInt64), NewString(""), NewBool(false)} {
		if bytes.Compare(null, AppendKey(nil, v)) >= 0 {
			t.Errorf("NULL does not sort before %v", v)
		}
	}
}

func TestSurrogateKeyRoundTrip(t *testing.T) {
	k := AppendSurrogateKey(nil, 0xDEADBEEF)
	if got := SurrogateFromKey(k); got != 0xDEADBEEF {
		t.Errorf("surrogate round trip = %x", got)
	}
	// Order-preserving.
	a := AppendSurrogateKey(nil, 5)
	b := AppendSurrogateKey(nil, 6)
	if bytes.Compare(a, b) >= 0 {
		t.Error("surrogate keys out of order")
	}
}

func TestCompareSymbolicByOrdinal(t *testing.T) {
	bs := NewSymbolic("BS", 0)
	phd := NewSymbolic("PHD", 3)
	n, err := Compare(bs, phd)
	if err != nil || n >= 0 {
		t.Errorf("BS < PHD: %d, %v", n, err)
	}
	tri, _ := CmpLT.Apply(bs, phd)
	if tri != True {
		t.Error("BS < PHD not true")
	}
}

func TestSortLessTotalOrder(t *testing.T) {
	vals := []Value{Null, NewInt(1), NewNumber(2.5), NewString("a"), NewBool(true), NewDate(3)}
	for i, a := range vals {
		if SortLess(a, a) {
			t.Errorf("SortLess(%v,%v) reflexive", a, a)
		}
		for j, b := range vals {
			if i == j {
				continue
			}
			if SortLess(a, b) == SortLess(b, a) && !a.Equal(b) {
				t.Errorf("SortLess not antisymmetric for %v,%v", a, b)
			}
		}
	}
}

func TestValueKeyGrouping(t *testing.T) {
	if NewInt(3).Key() != NewNumber(3).Key() {
		t.Error("3 and 3.0 group apart")
	}
	if NewInt(3).Key() == NewString("3").Key() {
		t.Error("3 and \"3\" group together")
	}
	if Null.Key() != Null.Key() {
		t.Error("NULL grouping unstable")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "?"},
		{NewInt(42), "42"},
		{NewNumber(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(false), "false"},
		{NewSymbolic("MS", 2), "MS"},
		{NewSurrogate(9), "#9"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}
