package value

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding of values for the storage substrate. A value is encoded
// as a one-byte kind tag followed by a kind-specific payload:
//
//	null                      (no payload)
//	int/date/bool/surrogate   zig-zag varint
//	number                    8-byte big-endian IEEE-754 bits
//	string                    uvarint length + bytes
//	symbolic                  uvarint ordinal + uvarint length + label bytes
//
// The encoding is self-delimiting so records can hold sequences of values.

// Append appends the binary encoding of v to dst and returns the result.
func Append(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt, KindDate, KindBool, KindSurrogate:
		dst = binary.AppendVarint(dst, v.i)
	case KindNumber:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], mathFloat64bits(v.f))
		dst = append(dst, buf[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindSymbolic:
		dst = binary.AppendVarint(dst, v.i)
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

// Decode decodes one value from b, returning the value and the remaining
// bytes.
func Decode(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Null, nil, fmt.Errorf("value: decode: empty input")
	}
	k := Kind(b[0])
	b = b[1:]
	switch k {
	case KindNull:
		return Null, b, nil
	case KindInt, KindDate, KindBool, KindSurrogate:
		i, n := binary.Varint(b)
		if n <= 0 {
			return Null, nil, fmt.Errorf("value: decode: bad varint")
		}
		return Value{kind: k, i: i}, b[n:], nil
	case KindNumber:
		if len(b) < 8 {
			return Null, nil, fmt.Errorf("value: decode: short number")
		}
		f := mathFloat64frombits(binary.BigEndian.Uint64(b[:8]))
		return Value{kind: KindNumber, f: f}, b[8:], nil
	case KindString:
		ln, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < ln {
			return Null, nil, fmt.Errorf("value: decode: bad string")
		}
		s := string(b[n : n+int(ln)])
		return Value{kind: KindString, s: s}, b[n+int(ln):], nil
	case KindSymbolic:
		ord, n := binary.Varint(b)
		if n <= 0 {
			return Null, nil, fmt.Errorf("value: decode: bad symbolic ordinal")
		}
		b = b[n:]
		ln, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < ln {
			return Null, nil, fmt.Errorf("value: decode: bad symbolic label")
		}
		s := string(b[n : n+int(ln)])
		return Value{kind: KindSymbolic, i: ord, s: s}, b[n+int(ln):], nil
	}
	return Null, nil, fmt.Errorf("value: decode: unknown kind tag %d", k)
}

// AppendRow encodes a slice of values prefixed with its length.
func AppendRow(dst []byte, row []Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = Append(dst, v)
	}
	return dst
}

// DecodeRow decodes a length-prefixed slice of values.
func DecodeRow(b []byte) ([]Value, []byte, error) {
	n, ln := binary.Uvarint(b)
	if ln <= 0 {
		return nil, nil, fmt.Errorf("value: decode row: bad length")
	}
	b = b[ln:]
	// Cap the preallocation by what the input could possibly hold (every
	// encoded value is at least one byte): a corrupt or hostile length
	// prefix must not make the decoder allocate gigabytes up front.
	capHint := n
	if capHint > uint64(len(b)) {
		capHint = uint64(len(b))
	}
	row := make([]Value, 0, capHint)
	for i := uint64(0); i < n; i++ {
		var v Value
		var err error
		v, b, err = Decode(b)
		if err != nil {
			return nil, nil, fmt.Errorf("value: decode row field %d: %w", i, err)
		}
		row = append(row, v)
	}
	return row, b, nil
}
