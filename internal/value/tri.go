package value

import "fmt"

// Tri is a three-valued logic truth value. SIM's WHERE clause keeps an
// entity only when the selection expression evaluates to True; both False
// and Unknown reject it.
type Tri int

// Truth values, ordered so that And is min and Or is max.
const (
	False   Tri = 0
	Unknown Tri = 1
	True    Tri = 2
)

func (t Tri) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	}
	return "unknown"
}

// TriOf lifts a Go bool into Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And is Kleene conjunction.
func (t Tri) And(o Tri) Tri {
	if o < t {
		return o
	}
	return t
}

// Or is Kleene disjunction.
func (t Tri) Or(o Tri) Tri {
	if o > t {
		return o
	}
	return t
}

// Not is Kleene negation.
func (t Tri) Not() Tri { return True - t }

// IsTrue reports whether the truth value is definitely True.
func (t Tri) IsTrue() bool { return t == True }

// Cmp enumerates DML comparison operators over values.
type Cmp int

// Comparison operators.
const (
	CmpEQ Cmp = iota
	CmpNEQ
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c Cmp) String() string {
	switch c {
	case CmpEQ:
		return "="
	case CmpNEQ:
		return "neq"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return "?"
}

// Apply evaluates `a c b` under three-valued logic: any NULL operand yields
// Unknown; incomparable kinds are an error.
func (c Cmp) Apply(a, b Value) (Tri, error) {
	if a.IsNull() || b.IsNull() {
		return Unknown, nil
	}
	if c == CmpEQ || c == CmpNEQ {
		// Equality is defined for every matching kind (incl. surrogates);
		// mixed non-numeric kinds are a type error surfaced at bind time,
		// but be permissive here and treat them as unequal-compatible only
		// when comparable.
		if !comparable(a.kind, b.kind) {
			return False, fmt.Errorf("value: cannot compare %s with %s", a.Kind(), b.Kind())
		}
		eq := a.Equal(b)
		if c == CmpNEQ {
			return TriOf(!eq), nil
		}
		return TriOf(eq), nil
	}
	n, err := Compare(a, b)
	if err != nil {
		return Unknown, err
	}
	switch c {
	case CmpLT:
		return TriOf(n < 0), nil
	case CmpLE:
		return TriOf(n <= 0), nil
	case CmpGT:
		return TriOf(n > 0), nil
	case CmpGE:
		return TriOf(n >= 0), nil
	}
	return Unknown, fmt.Errorf("value: unknown comparison %v", c)
}

// Arith enumerates arithmetic operators.
type Arith int

// Arithmetic operators.
const (
	OpAdd Arith = iota
	OpSub
	OpMul
	OpDiv
)

func (o Arith) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Apply evaluates `a o b`. NULL propagates. Integer/integer stays integer
// except for division, which yields a number. Date arithmetic allows
// date ± integer (days) and date - date (days).
func (o Arith) Apply(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	// Date arithmetic.
	if a.kind == KindDate || b.kind == KindDate {
		switch {
		case o == OpAdd && a.kind == KindDate && b.kind == KindInt:
			return NewDate(a.i + b.i), nil
		case o == OpAdd && a.kind == KindInt && b.kind == KindDate:
			return NewDate(a.i + b.i), nil
		case o == OpSub && a.kind == KindDate && b.kind == KindInt:
			return NewDate(a.i - b.i), nil
		case o == OpSub && a.kind == KindDate && b.kind == KindDate:
			return NewInt(a.i - b.i), nil
		}
		return Null, fmt.Errorf("value: invalid date arithmetic %s %s %s", a.Kind(), o, b.Kind())
	}
	if !numericKind(a.kind) || !numericKind(b.kind) {
		return Null, fmt.Errorf("value: %s not defined on %s and %s", o, a.Kind(), b.Kind())
	}
	if a.kind == KindInt && b.kind == KindInt && o != OpDiv {
		switch o {
		case OpAdd:
			return NewInt(a.i + b.i), nil
		case OpSub:
			return NewInt(a.i - b.i), nil
		case OpMul:
			return NewInt(a.i * b.i), nil
		}
	}
	x, y := a.Number(), b.Number()
	switch o {
	case OpAdd:
		return NewNumber(x + y), nil
	case OpSub:
		return NewNumber(x - y), nil
	case OpMul:
		return NewNumber(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return NewNumber(x / y), nil
	}
	return Null, fmt.Errorf("value: unknown operator %v", o)
}

// Like evaluates SIM pattern matching: '*' matches any run of characters
// and '?' matches exactly one, anchored at both ends. NULL operands yield
// Unknown.
func Like(v, pattern Value) (Tri, error) {
	if v.IsNull() || pattern.IsNull() {
		return Unknown, nil
	}
	if v.kind != KindString && v.kind != KindSymbolic {
		return False, fmt.Errorf("value: LIKE requires a string, got %s", v.Kind())
	}
	if pattern.kind != KindString {
		return False, fmt.Errorf("value: LIKE pattern must be a string, got %s", pattern.Kind())
	}
	return TriOf(globMatch(pattern.s, v.s)), nil
}

// globMatch matches pattern p (with * and ?) against s iteratively with
// backtracking on the last star.
func globMatch(p, s string) bool {
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '?' || p[pi] == s[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '*':
			star, mark = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '*' {
		pi++
	}
	return pi == len(p)
}
