// Package value implements SIM's typed value system: integers, fixed-point
// numbers, strings, dates, symbolic (enumerated) values, booleans and
// surrogates, together with NULL and the three-valued logic the DML
// requires (§4.9 of the paper: "Null values are treated uniformly in
// expression evaluation, and SIM follows the 3-valued logic").
package value

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime types of SIM values.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindNumber
	KindString
	KindBool
	KindDate
	KindSymbolic
	KindSurrogate
)

var kindNames = [...]string{"null", "integer", "number", "string", "boolean", "date", "symbolic", "surrogate"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// Surrogate is the system-maintained unique identity of an entity (§3.1).
// Zero is never a valid surrogate.
type Surrogate uint64

// Value is a single SIM scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64   // Int; Date (days since epoch); Bool (0/1); Symbolic ordinal; Surrogate
	f    float64 // Number
	s    string  // String; Symbolic label
}

// Null is the NULL value, representing both "unknown" and "inapplicable".
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewNumber returns a fixed/floating numeric value.
func NewNumber(v float64) Value { return Value{kind: KindNumber, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewDate returns a date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{kind: KindDate, i: days} }

// NewSymbolic returns a symbolic (enumerated) value with its label and the
// label's ordinal in the declaring type.
func NewSymbolic(label string, ordinal int) Value {
	return Value{kind: KindSymbolic, s: label, i: int64(ordinal)}
}

// NewSurrogate returns an entity-identity value.
func NewSurrogate(s Surrogate) Value { return Value{kind: KindSurrogate, i: int64(s)} }

// DateFromTime converts a civil time to a date value (UTC calendar day).
func DateFromTime(t time.Time) Value {
	days := t.UTC().Unix() / 86400
	return NewDate(days)
}

// ParseDate parses "YYYY-MM-DD" into a date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("invalid date %q: %w", s, err)
	}
	return DateFromTime(t), nil
}

// Kind returns the value's runtime kind; KindNull for NULL.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics unless the kind is KindInt.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("value: Int() on " + v.kind.String())
	}
	return v.i
}

// Number returns the numeric payload of an Int or Number value as float64.
func (v Value) Number() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindNumber:
		return v.f
	}
	panic("value: Number() on " + v.kind.String())
}

// Str returns the string payload of a String or Symbolic value.
func (v Value) Str() string {
	if v.kind != KindString && v.kind != KindSymbolic {
		panic("value: Str() on " + v.kind.String())
	}
	return v.s
}

// Bool returns the boolean payload. It panics unless the kind is KindBool.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("value: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// Days returns the date payload as days since the epoch.
func (v Value) Days() int64 {
	if v.kind != KindDate {
		panic("value: Days() on " + v.kind.String())
	}
	return v.i
}

// Ordinal returns a symbolic value's position in its declaring type.
func (v Value) Ordinal() int {
	if v.kind != KindSymbolic {
		panic("value: Ordinal() on " + v.kind.String())
	}
	return int(v.i)
}

// Surrogate returns the entity identity payload.
func (v Value) Surrogate() Surrogate {
	if v.kind != KindSurrogate {
		panic("value: Surrogate() on " + v.kind.String())
	}
	return Surrogate(v.i)
}

// String renders the value for display. NULL renders as "?", matching the
// convention of SIM's IQF listings.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "?"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindNumber:
		return strconv.FormatFloat(v.f, 'f', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return time.Unix(v.i*86400, 0).UTC().Format("2006-01-02")
	case KindSymbolic:
		return v.s
	case KindSurrogate:
		return fmt.Sprintf("#%d", v.i)
	}
	return "?"
}

// numericKind reports whether values of kind k participate in arithmetic.
func numericKind(k Kind) bool { return k == KindInt || k == KindNumber }

// comparable reports whether two non-null kinds may be ordered against each
// other.
func comparable(a, b Kind) bool {
	if a == b {
		return a != KindNull
	}
	return numericKind(a) && numericKind(b)
}

// Equal is Go-level equality of two values (NULL equals NULL here; use
// Compare + Tri for SQL-style semantics).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		if numericKind(v.kind) && numericKind(o.kind) {
			return v.Number() == o.Number()
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindNumber:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindSymbolic:
		return v.s == o.s
	default:
		return v.i == o.i
	}
}

// Compare orders two non-null values: -1, 0, +1. It returns an error when
// the kinds are not mutually comparable. Symbolic values order by the
// ordinal of their declaration (BS < MBA < MS < PHD in the paper's degree
// type). Strings compare case-sensitively.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("value: comparison with NULL has no order")
	}
	if !comparable(a.kind, b.kind) {
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
	}
	switch {
	case numericKind(a.kind):
		x, y := a.Number(), b.Number()
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		}
		return 0, nil
	case a.kind == KindString:
		return strings.Compare(a.s, b.s), nil
	case a.kind == KindSymbolic:
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		}
		return 0, nil
	case a.kind == KindBool:
		x, y := a.i, b.i
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		}
		return 0, nil
	case a.kind == KindDate, a.kind == KindSurrogate:
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("value: cannot compare %s", a.kind)
}

// SortLess is a total order usable for ORDER BY and DISTINCT: NULL sorts
// first, then by kind, then by Compare within comparable kinds.
func SortLess(a, b Value) bool {
	if a.IsNull() {
		return !b.IsNull()
	}
	if b.IsNull() {
		return false
	}
	ka, kb := a.kind, b.kind
	if numericKind(ka) {
		ka = KindNumber
	}
	if numericKind(kb) {
		kb = KindNumber
	}
	if ka != kb {
		return ka < kb
	}
	c, err := Compare(a, b)
	if err != nil {
		return false
	}
	return c < 0
}

// Key returns a string that is equal exactly for values that are Equal; it
// is used for DISTINCT and grouping. Numeric kinds normalise together.
func (v Value) Key() string {
	return string(v.AppendKey(nil))
}

// AppendKey appends v's comparison key (see Key) to dst. Hot dedup loops
// reuse one buffer across rows instead of building a string per value.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 'n')
	case KindInt:
		return strconv.AppendFloat(append(dst, 'f'), float64(v.i), 'g', -1, 64)
	case KindNumber:
		return strconv.AppendFloat(append(dst, 'f'), v.f, 'g', -1, 64)
	case KindString:
		return append(append(dst, 's'), v.s...)
	case KindBool:
		return strconv.AppendInt(append(dst, 'b'), v.i, 10)
	case KindDate:
		return strconv.AppendInt(append(dst, 'd'), v.i, 10)
	case KindSymbolic:
		return append(append(dst, 'y'), v.s...)
	case KindSurrogate:
		return strconv.AppendInt(append(dst, 'g'), v.i, 10)
	}
	return append(dst, '?')
}
