package value

// Arena chunk-allocates Value slices for result rows: one make per chunk
// instead of one per row. Returned slices are full (three-index) slices,
// so appending to one reallocates instead of growing into its neighbor —
// rows handed to callers can never corrupt each other even though they
// share backing arrays. An Arena is owned by whoever owns the rows (the
// Result, not the executor's reusable scratch) and must not be recycled
// while any row it handed out is still referenced.
//
// The zero Arena is ready to use. Not safe for concurrent use.
type Arena struct {
	chunk []Value
	size  int // next chunk size; doubles up to arenaChunkMax
}

// Chunk sizes: the first chunk is small so point queries (one or two
// rows) don't pay for a scan-sized block, then each subsequent chunk
// doubles so large results still amortize to one make per ~chunk.
const (
	arenaChunkMin = 16
	arenaChunkMax = 1024
)

// Alloc returns a zeroed row of n values carved from the current chunk.
func (a *Arena) Alloc(n int) []Value {
	if n == 0 {
		return nil
	}
	if n > arenaChunkMax {
		return make([]Value, n)
	}
	if len(a.chunk) < n {
		if a.size < arenaChunkMin {
			a.size = arenaChunkMin
		}
		for a.size < n {
			a.size *= 2
		}
		a.chunk = make([]Value, a.size)
		if a.size < arenaChunkMax {
			a.size *= 2
		}
	}
	row := a.chunk[:n:n]
	a.chunk = a.chunk[n:]
	return row
}
