package value

import (
	"encoding/binary"
	"math"
)

// Order-preserving key encoding: for comparable values a < b implies
// AppendKey(a) < AppendKey(b) bytewise, so B+tree index scans see values in
// DML order. Layout: a kind tag byte (numeric kinds share one tag) followed
// by a kind-specific payload. NULL sorts before everything, matching
// SortLess.

// Key tag bytes, in sort order.
const (
	keyNull     = 0x00
	keyNumber   = 0x10 // int and number normalize together
	keyString   = 0x20
	keyBool     = 0x30
	keyDate     = 0x40
	keySymbolic = 0x50
	keySurr     = 0x60
)

// AppendKey appends the order-preserving encoding of v to dst.
func AppendKey(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, keyNull)
	case KindInt:
		dst = append(dst, keyNumber)
		return appendKeyFloat(dst, float64(v.i))
	case KindNumber:
		dst = append(dst, keyNumber)
		return appendKeyFloat(dst, v.f)
	case KindString:
		dst = append(dst, keyString)
		return appendKeyString(dst, v.s)
	case KindBool:
		dst = append(dst, keyBool)
		return append(dst, byte(v.i))
	case KindDate:
		dst = append(dst, keyDate)
		return appendKeyInt64(dst, v.i)
	case KindSymbolic:
		// Symbolic values order by declaration ordinal (§2's strong
		// typing); the label is not part of the key.
		dst = append(dst, keySymbolic)
		return appendKeyInt64(dst, v.i)
	case KindSurrogate:
		dst = append(dst, keySurr)
		return appendKeyInt64(dst, v.i)
	}
	return append(dst, keyNull)
}

// appendKeyFloat encodes a float so the byte order matches numeric order:
// flip the sign bit for non-negatives, flip all bits for negatives.
func appendKeyFloat(dst []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], bits)
	return append(dst, b[:]...)
}

// appendKeyInt64 encodes a signed integer order-preservingly by biasing the
// sign bit.
func appendKeyInt64(dst []byte, i int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i)^(1<<63))
	return append(dst, b[:]...)
}

// appendKeyString escapes 0x00 (as 0x00 0xFF) and terminates with
// 0x00 0x00, preserving order for strings with shared prefixes and
// embedded zero bytes.
func appendKeyString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, 0x00, 0x00)
}

// AppendSurrogateKey appends the fixed 8-byte big-endian encoding of a
// surrogate, the key format of every class LUC.
func AppendSurrogateKey(dst []byte, s Surrogate) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(s))
	return append(dst, b[:]...)
}

// SurrogateFromKey reads an 8-byte big-endian surrogate.
func SurrogateFromKey(b []byte) Surrogate {
	return Surrogate(binary.BigEndian.Uint64(b[:8]))
}
