package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Isolation anomaly suite. Each test pins one guarantee of the MVCC
// model (DESIGN.md §15): snapshot reads see only committed state, a
// transaction's read view is stable, write conflicts are first-writer-
// wins at entity granularity, and readers never touch the store write
// latch. Run under -race; the mvcc-smoke CI job does.

// acctBal reads acct id=1's balance through query (a Database.QueryCtx
// or Tx.Query method value).
func acctBal(t *testing.T, query func(ctx context.Context, dml string) (*Result, error), id int) string {
	t.Helper()
	r, err := query(context.Background(), fmt.Sprintf(`From acct Retrieve bal Where id = %d.`, id))
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Rows()
	if len(rows) != 1 {
		t.Fatalf("want one acct row for id=%d, got %d", id, len(rows))
	}
	return rows[0][0].String()
}

// TestIsolationNoDirtyReads: an uncommitted write is invisible to every
// other reader — autocommit statements and read-only transactions alike.
func TestIsolationNoDirtyReads(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()

	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Modify acct (bal := 999) Where id = 1.`); err != nil {
		t.Fatalf("uncommitted write: %v", err)
	}
	// The writer itself reads its own write...
	if got := acctBal(t, tx.Query, 1); got != "999" {
		t.Fatalf("writer does not read its own write: bal=%s", got)
	}
	// ...but nobody else does.
	if got := acctBal(t, db.QueryCtx, 1); got != "100" {
		t.Fatalf("dirty read through autocommit: bal=%s, want 100", got)
	}
	ro, err := db.Begin(ctx, ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Rollback()
	if got := acctBal(t, ro.Query, 1); got != "100" {
		t.Fatalf("dirty read through read-only tx: bal=%s, want 100", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// Post-commit: new statements see the write.
	if got := acctBal(t, db.QueryCtx, 1); got != "999" {
		t.Fatalf("committed write invisible: bal=%s", got)
	}
}

// TestIsolationRepeatableReads: a transaction's read view is pinned at
// Begin; writes committed afterwards by others never leak in.
func TestIsolationRepeatableReads(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()

	ro, err := db.Begin(ctx, ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Rollback()
	if got := acctBal(t, ro.Query, 1); got != "100" {
		t.Fatalf("first read: bal=%s", got)
	}
	if _, err := db.ExecCtx(ctx, `Modify acct (bal := 200) Where id = 1.`); err != nil {
		t.Fatalf("concurrent autocommit write: %v", err)
	}
	// The open snapshot still answers with the Begin-time state, even
	// though a newer version is committed and published.
	if got := acctBal(t, ro.Query, 1); got != "100" {
		t.Fatalf("non-repeatable read: bal=%s, want 100", got)
	}
	// Entities committed after Begin are invisible too (no phantoms from
	// the pinned snapshot's point of view).
	if _, err := db.ExecCtx(ctx, `Insert acct (id := 7, bal := 7).`); err != nil {
		t.Fatal(err)
	}
	if ids := acctIDs(t, ro.Query); ids["7"] {
		t.Fatalf("phantom entity leaked into pinned snapshot: %v", ids)
	}
	// A fresh statement outside the transaction sees everything.
	if got := acctBal(t, db.QueryCtx, 1); got != "200" {
		t.Fatalf("autocommit read after commit: bal=%s", got)
	}
}

// TestIsolationFirstWriterWinsEntity: two transactions writing the SAME
// entity conflict immediately — fail-fast ErrConflict for the second,
// without aborting it — and the loser can retry after the winner commits.
func TestIsolationFirstWriterWinsEntity(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()

	tx1, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Exec(ctx, `Modify acct (bal := 150) Where id = 1.`); err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before := db.store.EntityConflicts()
	if _, err := tx2.Exec(ctx, `Modify acct (bal := 1) Where id = 1.`); !errors.Is(err, ErrConflict) {
		t.Fatalf("second writer on the same entity: err=%v, want ErrConflict", err)
	}
	if got := db.store.EntityConflicts(); got != before+1 {
		t.Fatalf("sim_conflict_entities: %d, want %d", got, before+1)
	}
	// The conflict did not abort tx2; it is still usable.
	if got := acctBal(t, tx2.Query, 1); got != "100" {
		t.Fatalf("tx2 read after conflict: bal=%s", got)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// The entity latch died with tx1: tx2 can now take it.
	if _, err := tx2.Exec(ctx, `Modify acct (bal := bal + 10) Where id = 1.`); err != nil {
		t.Fatalf("retry after winner committed: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := acctBal(t, db.QueryCtx, 1); got != "160" {
		t.Fatalf("lost update: bal=%s, want 160", got)
	}
}

// TestIsolationDistinctEntitiesBothCommit: two transactions writing
// DIFFERENT entities of the same class do not conflict — the second
// queues on the store write latch and commits after the first.
func TestIsolationDistinctEntitiesBothCommit(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()
	mustExec(t, db, `Insert acct (id := 2, bal := 200).`)

	tx1, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Exec(ctx, `Modify acct (bal := 111) Where id = 1.`); err != nil {
		t.Fatal(err)
	}
	// tx2 targets entity 2: no conflict, but it must wait for the write
	// latch tx1 holds, so it runs on its own goroutine.
	done := make(chan error, 1)
	go func() {
		tx2, err := db.Begin(ctx)
		if err != nil {
			done <- err
			return
		}
		if _, err := tx2.Exec(ctx, `Modify acct (bal := 222) Where id = 2.`); err != nil {
			tx2.Rollback()
			done <- err
			return
		}
		done <- tx2.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("tx2 finished while tx1 held the write latch: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("tx2 (distinct entity): %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tx2 never finished after tx1 committed")
	}
	if got := acctBal(t, db.QueryCtx, 1); got != "111" {
		t.Fatalf("entity 1: bal=%s", got)
	}
	if got := acctBal(t, db.QueryCtx, 2); got != "222" {
		t.Fatalf("entity 2: bal=%s", got)
	}
}

// TestIsolationReadersNeverBlockWriters: snapshot readers run entirely
// off the store write latch — a held write latch does not stall them,
// an open reader does not stall a writer, and the reader path performs
// zero write-latch acquisitions.
func TestIsolationReadersNeverBlockWriters(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()

	// A long-lived reader pins the oldest snapshot for the whole test.
	ro, err := db.Begin(ctx, ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Rollback()

	// A writer holding the write latch (open tx after its first write)
	// must not stall concurrent readers.
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Modify acct (bal := 300) Where id = 1.`); err != nil {
		t.Fatal(err)
	}
	latchAcq := func() float64 {
		return db.Metrics().Snapshot()["sim_latch_store_write_acquisitions_total"]
	}
	before := latchAcq()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			if _, err := db.QueryCtx(rctx, `From acct Retrieve id, bal.`); err != nil {
				t.Errorf("reader under held write latch: %v", err)
			}
		}()
	}
	wg.Wait()
	if after := latchAcq(); after != before {
		t.Fatalf("readers acquired the store write latch: %v → %v", before, after)
	}
	if got := acctBal(t, db.QueryCtx, 1); got != "100" {
		t.Fatalf("reader saw uncommitted write: bal=%s", got)
	}
	// The open read-only transaction does not stall the writer's commit.
	commitDone := make(chan error, 1)
	go func() { commitDone <- tx.Commit() }()
	select {
	case err := <-commitDone:
		if err != nil {
			t.Fatalf("commit under open reader: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("open read-only tx blocked a writer's commit")
	}
	// The reader still answers from its pinned snapshot after the commit.
	if got := acctBal(t, ro.Query, 1); got != "100" {
		t.Fatalf("pinned reader after commit: bal=%s, want 100", got)
	}
	if got := acctBal(t, db.QueryCtx, 1); got != "300" {
		t.Fatalf("fresh read after commit: bal=%s, want 300", got)
	}
}

// TestIsolationReadOnlyRefusesWrites: Exec inside a ReadOnly transaction
// fails with ErrReadOnlyTx without aborting the transaction.
func TestIsolationReadOnlyRefusesWrites(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()

	ro, err := db.Begin(ctx, ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	if !ro.ReadOnly() {
		t.Fatal("ReadOnly() = false on a read-only tx")
	}
	if _, err := ro.Exec(ctx, `Modify acct (bal := 0) Where id = 1.`); !errors.Is(err, ErrReadOnlyTx) {
		t.Fatalf("Exec in read-only tx: %v, want ErrReadOnlyTx", err)
	}
	// Still readable after the refusal.
	if got := acctBal(t, ro.Query, 1); got != "100" {
		t.Fatalf("read after refused write: bal=%s", got)
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
}
