package sim

import (
	"fmt"
	"strings"
	"testing"

	"sim/internal/luc"
)

// populated builds a university database with n students enrolled across
// courses, suitable for optimizer tests. Indexes are configured on
// person.name and course.title.
func populated(t testing.TB, n int, mapping luc.Config) *Database {
	t.Helper()
	if mapping.Indexes == nil {
		mapping.Indexes = []string{"person.name", "course.title"}
	}
	db := universityDB(t, Config{Mapping: mapping})
	for i := 0; i < n; i++ {
		// Every 10th student is advised by Bob (advisees has MAX 10, so
		// bulk students mostly go unadvised).
		advisor := ""
		if i%10 == 0 {
			advisor = `advisor := instructor with (name = "Bob Stone"),`
		}
		stmt := fmt.Sprintf(`Insert student (name := "Bulk Student %04d", soc-sec-no := %d, %s
		  courses-enrolled := course with (title = "Algebra I")).`, i, 500000000+i, advisor)
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("bulk insert %d: %v", i, err)
		}
	}
	return db
}

func TestExplainUniqueLookup(t *testing.T) {
	db := universityDB(t, Config{})
	ex, err := db.Explain(`From person Retrieve name Where soc-sec-no = 456887766.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "unique lookup") {
		t.Errorf("explain = %q, want unique lookup", ex)
	}
}

func TestExplainScanWithoutIndex(t *testing.T) {
	db := universityDB(t, Config{})
	ex, err := db.Explain(`From person Retrieve name Where birthdate > "1970-01-01".`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "scan person") {
		t.Errorf("explain = %q, want scan", ex)
	}
}

func TestExplainIndexRange(t *testing.T) {
	db := populated(t, 60, luc.Config{})
	ex, err := db.Explain(`From person Retrieve soc-sec-no Where name = "Bulk Student 0001".`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "index range on name") {
		t.Errorf("explain = %q, want index range", ex)
	}
}

func TestExplainPivot(t *testing.T) {
	db := populated(t, 80, luc.Config{})
	// Selective predicate on a related class: the optimizer should pivot
	// through the inverse EVA rather than scanning every student.
	ex, err := db.Explain(`From student Retrieve soc-sec-no Where name of advisor = "Bob Stone".`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "pivot") {
		t.Errorf("explain = %q, want pivot strategy", ex)
	}
}

// Pivoted execution must agree with forced scans, including row order
// (perspective-surrogate order is restored by the pivot's sort).
func TestPivotMatchesScan(t *testing.T) {
	q := `From student Retrieve name, soc-sec-no Where name of advisor = "Bob Stone".`
	withIdx := populated(t, 80, luc.Config{})
	noIdx := populated(t, 80, luc.Config{Indexes: []string{}})

	exIdx, _ := withIdx.Explain(q)
	exNo, _ := noIdx.Explain(q)
	if !strings.Contains(exIdx, "pivot") || !strings.Contains(exNo, "scan") {
		t.Fatalf("strategies not as expected: %q vs %q", exIdx, exNo)
	}
	a := mustQuery(t, withIdx, q)
	b := mustQuery(t, noIdx, q)
	expectRows(t, a, rowStrings(b))
	if a.NumRows() != 8 {
		t.Errorf("rows = %d, want 8", a.NumRows())
	}
}

func TestIndexRangeMatchesScan(t *testing.T) {
	q := `From course Retrieve title, credits Where title >= "C" and title < "N" Order By title.`
	withIdx := populated(t, 5, luc.Config{})
	noIdx := populated(t, 5, luc.Config{Indexes: []string{}})
	a := mustQuery(t, withIdx, q)
	b := mustQuery(t, noIdx, q)
	expectRows(t, a, rowStrings(b))
	expectRows(t, a, [][]string{{"Calculus I", "5"}, {"Databases", "5"}, {"Mechanics", "5"}})
}

// The same integration queries produce identical answers under every
// physical mapping of §5.2 — mapping is invisible to semantics.
func TestMappingVariantsAgree(t *testing.T) {
	variants := map[string]luc.Config{
		"default": {},
		"split-hierarchies": {Hierarchy: map[string]luc.HierarchyStrategy{
			"person": luc.HierarchySplit, "course": luc.HierarchySplit, "department": luc.HierarchySplit}},
		"fk-advisor": {EVA: map[string]luc.EVAStrategy{"student.advisor": luc.EVAForeignKey}},
		"all-common": {EVA: map[string]luc.EVAStrategy{
			"student.advisor":          luc.EVACommon,
			"person.spouse":            luc.EVACommon,
			"student.courses-enrolled": luc.EVACommon,
		}},
		"private-evas": {EVA: map[string]luc.EVAStrategy{
			"student.courses-enrolled": luc.EVAPrivate,
			"course.prerequisites":     luc.EVAPrivate,
		}},
	}
	queries := []string{
		`From Student Retrieve Name, Name of Advisor.`,
		`Retrieve name of instructor, title of courses-taught Where name of major-department of advisees = "Physics".`,
		`From course Retrieve count distinct (transitive(prerequisites)) Where title = "Quantum Chromodynamics".`,
		`From Department Retrieve Name, AVG(Salary of Instructors-employed) Order By Name.`,
		`From Person Retrieve Profession Where Name = "Tina Aide".`,
	}
	var want [][][]string
	for name, cfg := range variants {
		db := universityDB(t, Config{Mapping: cfg})
		for qi, q := range queries {
			r, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s: query %d: %v", name, qi, err)
			}
			got := rowStrings(r)
			if want == nil || len(want) <= qi {
				want = append(want, got)
				continue
			}
			if fmt.Sprint(got) != fmt.Sprint(want[qi]) {
				t.Errorf("%s: query %d differs:\n got %v\nwant %v", name, qi, got, want[qi])
			}
		}
	}
}

func TestStatsVisible(t *testing.T) {
	db := populated(t, 30, luc.Config{})
	db.ResetStats()
	mustQuery(t, db, `From student Retrieve name.`)
	st := db.Stats()
	if st.Pool.Hits == 0 {
		t.Error("no buffer pool activity recorded")
	}
}
