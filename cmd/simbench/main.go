// Command simbench regenerates every reproduced figure, example and
// performance claim of EXPERIMENTS.md.
//
// Usage:
//
//	simbench [-run id[,id...]] [-scale n] [-reps n] [-parallel n] [-net] [-check-allocs]
//
// Experiment ids: fig2, adds, dml, t1..t10, t12 (alias: txn), t13
// (alias: vm), obs, obs2, fault, repl (alias: t14), failover (alias:
// t15), all (default). The t9 run
// writes its table to BENCH_parallel.json, the t10 run (network mode,
// also selectable as -net) writes BENCH_net.json, the t12/txn run (group
// commit) writes BENCH_txn.json, the t13/vm run (compiled evaluator)
// writes BENCH_vm.json, the obs run (tracing overhead) writes
// BENCH_obs.json, the obs2 run (always-on flight recorder overhead)
// writes BENCH_obs2.json, the fault run (checksum/recovery/retry overhead)
// writes BENCH_fault.json, the repl/t14 run (read replicas, sized by
// -followers) writes BENCH_repl.json, the failover/t15 run
// (follower promotion) writes BENCH_failover.json, and the mvcc/t16 run
// (snapshot read scaling, entity-granularity write conflicts, version GC)
// writes BENCH_mvcc.json for machine consumption. Every artifact records
// allocs/op and bytes/op for its hot operations; -check-allocs compares
// a fresh t13 run against the committed BENCH_vm.json and fails if any
// compiled-path operation allocates more than 20% over the recorded
// figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sim/internal/bench"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (fig2,adds,dml,t1..t10,t12/txn,t13/vm,obs,obs2,fault,repl/t14,failover/t15,mvcc/t16)")
	scale := flag.Int("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 5, "repetitions per measurement")
	parallel := flag.Int("parallel", 8, "maximum concurrent clients for t9/t10")
	writers := flag.Int("writers", 16, "maximum concurrent committers for t12")
	followers := flag.Int("followers", 4, "read replicas for the repl experiment")
	netMode := flag.Bool("net", false, "network mode: run the t10 client/server experiment")
	checkAllocs := flag.Bool("check-allocs", false, "fail if t13 compiled-path allocs/op regress >20% vs committed BENCH_vm.json")
	flag.Parse()
	if *checkAllocs {
		if *run == "all" {
			*run = "t13"
		} else {
			*run += ",t13"
		}
	}
	if *netMode {
		if *run == "all" {
			*run = "t10"
		} else {
			*run += ",t10"
		}
	}

	w := bench.DefaultWorkload.Scale(*scale)
	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToLower(*run), ",") {
		want[strings.TrimSpace(id)] = true
	}
	if want["txn"] { // alias for the transaction experiment
		want["t12"] = true
	}
	if want["vm"] { // alias for the compiled-evaluator experiment
		want["t13"] = true
	}
	if want["t14"] { // alias for the replication experiment
		want["repl"] = true
	}
	if want["t15"] { // alias for the failover experiment
		want["failover"] = true
	}
	if want["t16"] { // alias for the MVCC experiment
		want["mvcc"] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[strings.ToLower(id)] }

	type experiment struct {
		id string
		fn func() (*bench.Table, error)
	}
	experiments := []experiment{
		{"fig2", bench.Fig2},
		{"adds", bench.ADDS},
		{"dml", bench.DML},
		{"t1", func() (*bench.Table, error) { return bench.T1(w, *reps) }},
		{"t2", func() (*bench.Table, error) { return bench.T2(w, *reps) }},
		{"t3", func() (*bench.Table, error) { return bench.T3(300*(*scale), 24, *reps) }},
		{"t4", func() (*bench.Table, error) { return bench.T4(w, *reps) }},
		{"t5", func() (*bench.Table, error) { return bench.T5(w, *reps) }},
		{"t6", func() (*bench.Table, error) { return bench.T6(w, *reps) }},
		{"t7", func() (*bench.Table, error) { return bench.T7(*reps) }},
		{"t8", func() (*bench.Table, error) { return bench.T8(w, *reps) }},
		{"t9", func() (*bench.Table, error) { return bench.T9(w, *reps, *parallel) }},
		{"t10", func() (*bench.Table, error) { return bench.T10(w, *reps, *parallel) }},
		{"t12", func() (*bench.Table, error) { return bench.T12(*reps, *writers) }},
		{"t13", func() (*bench.Table, error) { return bench.T13(w, *reps) }},
		{"obs", func() (*bench.Table, error) { return bench.Obs(w, *reps) }},
		{"obs2", func() (*bench.Table, error) { return bench.Obs2(w, *reps) }},
		{"fault", func() (*bench.Table, error) { return bench.Fault(*reps) }},
		{"repl", func() (*bench.Table, error) { return bench.Repl(w, *reps, *followers) }},
		{"failover", func() (*bench.Table, error) { return bench.Failover(*reps) }},
		{"mvcc", func() (*bench.Table, error) { return bench.MVCC(*reps, *parallel) }},
	}
	artifacts := map[string]string{
		"t9":       "BENCH_parallel.json",
		"t10":      "BENCH_net.json",
		"t12":      "BENCH_txn.json",
		"t13":      "BENCH_vm.json",
		"obs":      "BENCH_obs.json",
		"obs2":     "BENCH_obs2.json",
		"fault":    "BENCH_fault.json",
		"repl":     "BENCH_repl.json",
		"failover": "BENCH_failover.json",
		"mvcc":     "BENCH_mvcc.json",
	}
	ran := 0
	for _, ex := range experiments {
		if !sel(ex.id) {
			continue
		}
		t, err := ex.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %s: %v\n", ex.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		if ex.id == "t13" && *checkAllocs {
			if err := compareAllocs("BENCH_vm.json", t); err != nil {
				fmt.Fprintf(os.Stderr, "simbench: check-allocs: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("check-allocs: compiled-path allocs/op within 20% of committed BENCH_vm.json")
		} else if path := artifacts[ex.id]; path != "" {
			if err := writeJSON(path, t); err != nil {
				fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "simbench: no experiment matches %q\n", *run)
		os.Exit(2)
	}
}

// compareAllocs checks a fresh t13 table against the committed artifact:
// each compiled-path operation may allocate at most 20% more per op than
// the recorded figure. Time is not compared (CI machines vary); alloc
// counts are deterministic enough to gate on.
func compareAllocs(path string, fresh *bench.Table) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed bench.Table
	if err := json.Unmarshal(b, &committed); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	want := map[string]int64{}
	for _, m := range committed.Mem {
		want[m.Op] = m.AllocsPerOp
	}
	checked := 0
	for _, m := range fresh.Mem {
		if !strings.Contains(m.Op, "compiled") {
			continue
		}
		limit, ok := want[m.Op]
		if !ok {
			return fmt.Errorf("%s has no committed figure for %q", path, m.Op)
		}
		if float64(m.AllocsPerOp) > 1.2*float64(limit) {
			return fmt.Errorf("%q allocates %d allocs/op, committed %d (+20%% limit %d)",
				m.Op, m.AllocsPerOp, limit, int64(1.2*float64(limit)))
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("no compiled-path operations found to check")
	}
	return nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
