// Command simserve runs a SIM database as a network server: the shared
// SIM kernel of the paper's Figure 1, serving remote front ends such as
// simdb -connect and the package client API.
//
// Usage:
//
//	simserve [-addr :1988] [-db file] [-schema ddl-file] [-university]
//	         [-replica-of addr] [-advertise addr] [-max-conns n] [-workers n]
//	         [-request-timeout d] [-read-timeout d] [-write-timeout d]
//	         [-drain d] [-log-level info] [-metrics addr]
//	         [-slow-query d] [-slow-request d] [-ready-max-lag n]
//
// The database is opened (in-memory when -db is empty), the optional
// schema is defined, and the server runs until SIGINT/SIGTERM, then
// drains in-flight requests for the -drain grace period.
//
// A file-backed server publishes a replication stream that any number of
// followers can subscribe to, under a fencing epoch persisted in the
// -db file's ".epoch" sidecar. With -replica-of, the server instead runs
// as a read replica: it replicates the primary at addr into -db (which is
// required), rejects every write with a "readonly" error, and serves
// bounded-stale reads; \replicas in simdb and the ReplStatus client call
// report its applied position and lag.
//
// Failover: \promote in simdb (or the client Promote call) turns a
// replica into the primary under a strictly higher epoch; the promoted
// node then fences the old primary, handing it this node's -advertise
// address as the rejoin target. -advertise is therefore effectively
// required for automatic failover recovery: with the default host-less
// -addr (":1988") the fence notice carries no rejoin address, and the
// demoted primary waits for an operator \retarget instead. A primary
// that learns of a higher epoch — from the fencer, or from a promoted
// follower's hello — demotes itself: writes answer a "fenced" error, and
// when the notice carries the new primary's address the node rejoins it
// as a follower, discarding any unshipped tail via re-snapshot. A
// restarted old primary finds the witnessed epoch in the sidecar and
// starts fenced rather than writable.
//
// With -metrics, a second HTTP listener serves the observability
// surface: /metrics (Prometheus text exposition of every engine and
// server metric), /debug/vars (expvar), /debug/pprof, /debug/flight
// (the flight recorder's recent-event dump), and the health endpoints
// /healthz (process liveness) and /readyz (readiness to serve: a
// replica is ready only once its snapshot is installed and its lag is
// at most -ready-max-lag commit groups).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sim"
	"sim/internal/repl"
	"sim/internal/server"
	"sim/internal/university"
)

func main() {
	addr := flag.String("addr", ":1988", "listen address")
	dbPath := flag.String("db", "", "database file (empty: in-memory)")
	schemaFile := flag.String("schema", "", "DDL file to define at startup")
	univ := flag.Bool("university", false, "define the paper's UNIVERSITY schema at startup")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the primary at this address (requires -db)")
	maxConns := flag.Int("max-conns", 256, "concurrent connection limit")
	maxInflight := flag.Int("max-inflight", 0, "concurrent request limit; excess requests fast-fail with 'overloaded' (0: unbounded)")
	workers := flag.Int("workers", 0, "per-query parallelism (0: GOMAXPROCS)")
	poolPages := flag.Int("pool-pages", 0, "buffer pool pages (0: default)")
	reqTimeout := flag.Duration("request-timeout", time.Minute, "per-request execution deadline (0: none)")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "idle session deadline (0: none)")
	writeTimeout := flag.Duration("write-timeout", time.Minute, "response write deadline (0: none)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	metricsAddr := flag.String("metrics", "", "HTTP listen address for /metrics, /debug/vars and /debug/pprof (empty: disabled)")
	slowQuery := flag.Duration("slow-query", 0, "retain queries slower than this in the slow-query log (0: disabled)")
	slowRequest := flag.Duration("slow-request", 0, "log requests slower than this at warn level (0: disabled)")
	readyMaxLag := flag.Uint64("ready-max-lag", 64, "replica readiness threshold: /readyz reports ready only when the replica is at most this many commit groups behind")
	advertise := flag.String("advertise", "", "address other nodes reach this server at, delivered to a fenced old primary as its rejoin target after promotion (default: -addr; effectively required for failover — a host-less listen address like ':1988' cannot be rejoined)")
	flag.Parse()
	if *advertise == "" {
		*advertise = *addr
	}

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simserve: %v\n", err)
		os.Exit(2)
	}
	if host, _, err := net.SplitHostPort(*advertise); err != nil || host == "" {
		logger.Warn("advertise address has no reachable host; after a promotion the old primary will be fenced but cannot rejoin this node — set -advertise for automatic failover recovery",
			"advertise", *advertise)
	}

	if *replicaOf != "" {
		if *dbPath == "" {
			fmt.Fprintln(os.Stderr, "simserve: -replica-of requires -db (the replica's local database file)")
			os.Exit(2)
		}
		if *univ || *schemaFile != "" {
			fmt.Fprintln(os.Stderr, "simserve: a replica's schema comes from the primary; drop -schema/-university")
			os.Exit(2)
		}
	}

	db, err := sim.Open(*dbPath, sim.Config{
		PoolPages: *poolPages,
		Workers:   *workers,
		SlowQuery: *slowQuery,
	})
	if err != nil {
		fatal(logger, "open database", err)
	}
	defer db.Close()

	if *univ {
		if err := db.DefineSchema(university.DDL); err != nil {
			fatal(logger, "define university schema", err)
		}
		logger.Info("UNIVERSITY schema defined")
	}
	if *schemaFile != "" {
		ddl, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(logger, "read schema file", err)
		}
		if err := db.DefineSchema(string(ddl)); err != nil {
			fatal(logger, "define schema", err, "file", *schemaFile)
		}
		logger.Info("schema defined", "file", *schemaFile)
	}

	scfg := server.Config{
		MaxConns:       *maxConns,
		MaxInflight:    *maxInflight,
		ReadTimeout:    *readTimeout,
		WriteTimeout:   *writeTimeout,
		RequestTimeout: *reqTimeout,
		Logger:         logger,
		SlowRequest:    *slowRequest,
		Registry:       db.Metrics(),
	}
	rm := &roleMgr{
		db:        db,
		epochPath: *dbPath + ".epoch",
		statePath: *dbPath + ".repl",
		advertise: *advertise,
		logger:    logger,
		stop:      make(chan struct{}),
	}
	defer close(rm.stop)
	switch {
	case *replicaOf != "":
		follower, err := repl.StartFollower(db, rm.statePath, repl.FollowerConfig{
			Primary: *replicaOf,
			Logger:  logger,
		})
		if err != nil {
			fatal(logger, "start replication", err)
		}
		defer follower.Close()
		follower.RegisterMetrics(db.Metrics())
		rm.follower = follower
		scfg.ReadOnly = true
		scfg.ReplStatus = follower.Status
		scfg.Promote = rm.promote
		scfg.Retarget = rm.retarget
		// A replica can become a primary (TPromote) and then be fenced by
		// an even higher epoch; it needs the same demote/rejoin hook a
		// born primary gets, or its witnessed epoch would never persist.
		scfg.OnFence = rm.onFence
		logger.Info("replicating", "primary", *replicaOf)
	case *dbPath != "":
		// The epoch sidecar makes the fencing term survive restarts: a
		// primary that was demoted by a failover comes back fenced, not
		// writable at its stale term.
		epoch, fencedBy, err := repl.ClaimEpoch(rm.epochPath)
		if err != nil {
			fatal(logger, "claim replication epoch", err)
		}
		pub, err := repl.NewPublisher(db, repl.Config{Epoch: epoch})
		if err != nil {
			fatal(logger, "start replication publisher", err)
		}
		pub.RegisterMetrics(db.Metrics())
		scfg.Publisher = pub
		scfg.ReplStatus = pub.Status
		scfg.OnFence = rm.onFence
		if fencedBy > 0 {
			scfg.FencedBy = fencedBy
			logger.Warn("starting fenced: a higher epoch was witnessed before the last shutdown",
				"epoch", epoch, "fenced_by", fencedBy)
		} else {
			logger.Info("publishing replication stream", "epoch", pub.Epoch())
		}
	}
	srv := server.New(db, scfg)

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: metricsMux(db, rm, *readyMaxLag)}
		go func() {
			logger.Info("metrics endpoint listening", "addr", *metricsAddr)
			if err := metricsSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("metrics endpoint failed", "err", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		sig := <-sigc
		logger.Info("draining", "signal", sig.String(), "grace", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if metricsSrv != nil {
			metricsSrv.Shutdown(ctx)
		}
		done <- srv.Shutdown(ctx)
	}()

	logger.Info("listening", "addr", *addr)
	if err := srv.ListenAndServe(*addr); !errors.Is(err, server.ErrServerClosed) {
		fatal(logger, "serve", err)
	}
	if err := <-done; err != nil {
		logger.Error("shutdown incomplete", "err", err)
		os.Exit(1)
	}
	st := srv.Stats()
	logger.Info("stopped", "requests", st.Requests, "connections", st.Connections,
		"bytes_in", st.BytesIn, "bytes_out", st.BytesOut, "errors", st.Errors)
}

// newLogger builds the process logger at the requested level.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func fatal(logger *slog.Logger, msg string, err error, args ...any) {
	logger.Error(msg, append([]any{"err", err}, args...)...)
	os.Exit(1)
}

// metricsMux builds the observability HTTP surface over the database:
// Prometheus text on /metrics, the same snapshot through expvar on
// /debug/vars, the standard pprof handlers, the flight recorder on
// /debug/flight, and the health endpoints. /healthz answers 200 as long
// as the process serves HTTP (liveness). /readyz gates traffic through
// the node's CURRENT role: a primary or standalone server is ready as
// soon as it listens, a replica only after its base snapshot is
// installed and its applied position is within readyMaxLag commit groups
// of the primary's newest, and a promoted replica is ready immediately —
// pointing a load balancer at /readyz keeps cold or lagging replicas out
// of the read pool and follows the topology across a failover.
func metricsMux(db *sim.Database, rm *roleMgr, readyMaxLag uint64) *http.ServeMux {
	reg := db.Metrics()
	expvar.Publish("sim", expvar.Func(func() any { return reg.Snapshot() }))
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !rm.ready(readyMaxLag) {
			http.Error(w, "replica not ready: snapshot pending or lag over threshold",
				http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, db.FlightRecorder().Dump())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
