// Command simserve runs a SIM database as a network server: the shared
// SIM kernel of the paper's Figure 1, serving remote front ends such as
// simdb -connect and the package client API.
//
// Usage:
//
//	simserve [-addr :1988] [-db file] [-schema ddl-file] [-university]
//	         [-max-conns n] [-workers n] [-request-timeout d]
//	         [-read-timeout d] [-write-timeout d] [-drain d]
//
// The database is opened (in-memory when -db is empty), the optional
// schema is defined, and the server runs until SIGINT/SIGTERM, then
// drains in-flight requests for the -drain grace period.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sim"
	"sim/internal/server"
	"sim/internal/university"
)

func main() {
	addr := flag.String("addr", ":1988", "listen address")
	dbPath := flag.String("db", "", "database file (empty: in-memory)")
	schemaFile := flag.String("schema", "", "DDL file to define at startup")
	univ := flag.Bool("university", false, "define the paper's UNIVERSITY schema at startup")
	maxConns := flag.Int("max-conns", 256, "concurrent connection limit")
	workers := flag.Int("workers", 0, "per-query parallelism (0: GOMAXPROCS)")
	poolPages := flag.Int("pool-pages", 0, "buffer pool pages (0: default)")
	reqTimeout := flag.Duration("request-timeout", time.Minute, "per-request execution deadline (0: none)")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "idle session deadline (0: none)")
	writeTimeout := flag.Duration("write-timeout", time.Minute, "response write deadline (0: none)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	flag.Parse()

	logger := log.New(os.Stderr, "simserve: ", log.LstdFlags)

	db, err := sim.Open(*dbPath, sim.Config{PoolPages: *poolPages, Workers: *workers})
	if err != nil {
		logger.Fatal(err)
	}
	defer db.Close()

	if *univ {
		if err := db.DefineSchema(university.DDL); err != nil {
			logger.Fatalf("university schema: %v", err)
		}
		logger.Print("UNIVERSITY schema defined")
	}
	if *schemaFile != "" {
		ddl, err := os.ReadFile(*schemaFile)
		if err != nil {
			logger.Fatal(err)
		}
		if err := db.DefineSchema(string(ddl)); err != nil {
			logger.Fatalf("schema %s: %v", *schemaFile, err)
		}
		logger.Printf("schema %s defined", *schemaFile)
	}

	srv := server.New(db, server.Config{
		MaxConns:       *maxConns,
		ReadTimeout:    *readTimeout,
		WriteTimeout:   *writeTimeout,
		RequestTimeout: *reqTimeout,
		Logf:           logger.Printf,
	})

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		sig := <-sigc
		logger.Printf("%v: draining (grace %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	logger.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(*addr); !errors.Is(err, server.ErrServerClosed) {
		logger.Fatal(err)
	}
	if err := <-done; err != nil {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "simserve: served %d requests over %d connections (%s)\n",
		st.Requests, st.Connections, st)
}
