package main

import (
	"errors"
	"log/slog"
	"net"
	"sync"

	"sim"
	"sim/internal/repl"
)

// errNotReplica reports a promote/retarget request on a node that is not
// currently applying a replication stream.
var errNotReplica = errors.New("this node is not following a primary")

// roleMgr owns this process's replication role transitions: a replica
// promoted by a TPromote frame, a primary fenced by a higher epoch and
// rejoined as a follower of the new one. The server package flips its own
// dispatch state; roleMgr does the process-level work around it — the
// epoch sidecar, the follower/publisher lifecycles, the fencer toward the
// old primary, and the /readyz answer.
type roleMgr struct {
	db        *sim.Database
	epochPath string // dbPath + ".epoch": the durable fencing term
	statePath string // dbPath + ".repl": the follower apply sidecar
	advertise string // the address other nodes reach this server at
	logger    *slog.Logger
	stop      chan struct{} // closed on shutdown; ends fencer retries

	mu       sync.Mutex
	follower *repl.Follower // non-nil while this node applies a stream
	promoted *repl.Promotion
}

// promote is the server.Config.Promote callback on a replica: drain and
// seal the follower, claim a strictly higher epoch, open the publisher,
// and start fencing the old primary in the background. Idempotent —
// Follower.Promote returns the same Promotion on a retry.
func (rm *roleMgr) promote() (*repl.Publisher, error) {
	rm.mu.Lock()
	f := rm.follower
	rm.mu.Unlock()
	if f == nil {
		return nil, errNotReplica
	}
	pr, err := f.Promote(repl.PromoteConfig{EpochPath: rm.epochPath})
	if err != nil {
		return nil, err
	}
	rm.mu.Lock()
	isNew := rm.promoted != pr // a retry returns the cached Promotion
	rm.promoted = pr
	rm.mu.Unlock()
	if isNew {
		pr.Pub.RegisterMetrics(rm.db.Metrics())
		if pr.OldPrimary != "" {
			rejoin := rm.rejoinAddr()
			if rejoin == "" {
				rm.logger.Warn("-advertise has no host; fencing the old primary without a rejoin target",
					"advertise", rm.advertise, "old_primary", pr.OldPrimary)
			}
			go repl.RunFencer(rm.stop, pr.OldPrimary, pr.Epoch, rejoin, rm.logger)
		}
	}
	return pr.Pub, nil
}

// rejoinAddr is the address the fencer delivers to the old primary as its
// rejoin target. A host-less advertise address (the ":1988" -addr default)
// would be resolved by the old primary as localhost — it would "rejoin"
// itself and loop on CodeFenced — so in that case the fence notice carries
// no address: the old primary demotes but waits for an operator \retarget.
func (rm *roleMgr) rejoinAddr() string {
	if host, _, err := net.SplitHostPort(rm.advertise); err != nil || host == "" {
		return ""
	}
	return rm.advertise
}

// retarget is the server.Config.Retarget callback on a replica: re-point
// the stream at the new primary.
func (rm *roleMgr) retarget(addr string) error {
	rm.mu.Lock()
	f := rm.follower
	rm.mu.Unlock()
	if f == nil {
		return errNotReplica
	}
	return f.Retarget(addr)
}

// onFence is the server.Config.OnFence callback on any node that owns a
// publisher — born primary or promoted replica: a strictly higher epoch
// demoted it. The witnessed epoch is persisted first — a restart must
// come back fenced, not resurrect as a writable primary at the stale
// term — then, when the notice named the new primary, this node rejoins
// it as a follower: its diverged tail (commits it acknowledged but never
// shipped) is discarded by the re-snapshot the fresh follower requests.
// On a promoted replica rm.follower is the old, closed follower (Promote
// closed it); its Retarget errors and a fresh follower takes its place.
func (rm *roleMgr) onFence(epoch uint64, newPrimary string) {
	if err := repl.WitnessEpoch(rm.epochPath, epoch); err != nil {
		rm.logger.Error("persisting witnessed epoch failed", "epoch", epoch, "err", err)
	}
	if newPrimary == "" {
		return
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if rm.follower != nil {
		// Already rejoined after an earlier fence; chase the newest primary.
		if err := rm.follower.Retarget(newPrimary); err == nil {
			return
		}
		// The follower was closed (this node had been promoted); it cannot
		// reconnect anywhere — replace it.
		rm.follower = nil
	}
	f, err := repl.StartFollower(rm.db, rm.statePath, repl.FollowerConfig{
		Primary: newPrimary,
		Logger:  rm.logger,
	})
	if err != nil {
		rm.logger.Error("rejoin after fence failed", "primary", newPrimary, "err", err)
		return
	}
	f.RegisterMetrics(rm.db.Metrics())
	rm.follower = f
	rm.promoted = nil // demoted: /readyz gates on the new follower's lag again
	rm.logger.Info("rejoined new primary as follower", "primary", newPrimary, "epoch", epoch)
}

// ready answers /readyz for whatever role the node currently plays: a
// promoted (or born-primary) node is ready, a replica once its snapshot
// is installed and its lag is within maxLag.
func (rm *roleMgr) ready(maxLag uint64) bool {
	rm.mu.Lock()
	f, pr := rm.follower, rm.promoted
	rm.mu.Unlock()
	if pr != nil || f == nil {
		return true
	}
	return f.Ready(maxLag)
}
