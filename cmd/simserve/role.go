package main

import (
	"errors"
	"log/slog"
	"sync"

	"sim"
	"sim/internal/repl"
)

// errNotReplica reports a promote/retarget request on a node that is not
// currently applying a replication stream.
var errNotReplica = errors.New("this node is not following a primary")

// roleMgr owns this process's replication role transitions: a replica
// promoted by a TPromote frame, a primary fenced by a higher epoch and
// rejoined as a follower of the new one. The server package flips its own
// dispatch state; roleMgr does the process-level work around it — the
// epoch sidecar, the follower/publisher lifecycles, the fencer toward the
// old primary, and the /readyz answer.
type roleMgr struct {
	db        *sim.Database
	epochPath string // dbPath + ".epoch": the durable fencing term
	statePath string // dbPath + ".repl": the follower apply sidecar
	advertise string // the address other nodes reach this server at
	logger    *slog.Logger
	stop      chan struct{} // closed on shutdown; ends fencer retries

	mu       sync.Mutex
	follower *repl.Follower // non-nil while this node applies a stream
	promoted *repl.Promotion
}

// promote is the server.Config.Promote callback on a replica: drain and
// seal the follower, claim a strictly higher epoch, open the publisher,
// and start fencing the old primary in the background. Idempotent —
// Follower.Promote returns the same Promotion on a retry.
func (rm *roleMgr) promote() (*repl.Publisher, error) {
	rm.mu.Lock()
	f := rm.follower
	rm.mu.Unlock()
	if f == nil {
		return nil, errNotReplica
	}
	pr, err := f.Promote(repl.PromoteConfig{EpochPath: rm.epochPath})
	if err != nil {
		return nil, err
	}
	rm.mu.Lock()
	first := rm.promoted == nil
	rm.promoted = pr
	rm.mu.Unlock()
	if first {
		pr.Pub.RegisterMetrics(rm.db.Metrics())
		if pr.OldPrimary != "" {
			go repl.RunFencer(rm.stop, pr.OldPrimary, pr.Epoch, rm.advertise, rm.logger)
		}
	}
	return pr.Pub, nil
}

// retarget is the server.Config.Retarget callback on a replica: re-point
// the stream at the new primary.
func (rm *roleMgr) retarget(addr string) error {
	rm.mu.Lock()
	f := rm.follower
	rm.mu.Unlock()
	if f == nil {
		return errNotReplica
	}
	return f.Retarget(addr)
}

// onFence is the server.Config.OnFence callback on a primary: a strictly
// higher epoch demoted this node. The witnessed epoch is persisted first
// — a restart must come back fenced, not resurrect as a writable primary
// at the stale term — then, when the notice named the new primary, this
// node rejoins it as a follower: its diverged tail (commits it
// acknowledged but never shipped) is discarded by the re-snapshot the
// fresh follower requests.
func (rm *roleMgr) onFence(epoch uint64, newPrimary string) {
	if err := repl.WitnessEpoch(rm.epochPath, epoch); err != nil {
		rm.logger.Error("persisting witnessed epoch failed", "epoch", epoch, "err", err)
	}
	if newPrimary == "" {
		return
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if rm.follower != nil {
		// Already rejoined after an earlier fence; chase the newest primary.
		if err := rm.follower.Retarget(newPrimary); err != nil {
			rm.logger.Error("retarget after fence failed", "primary", newPrimary, "err", err)
		}
		return
	}
	f, err := repl.StartFollower(rm.db, rm.statePath, repl.FollowerConfig{
		Primary: newPrimary,
		Logger:  rm.logger,
	})
	if err != nil {
		rm.logger.Error("rejoin after fence failed", "primary", newPrimary, "err", err)
		return
	}
	rm.follower = f
	rm.logger.Info("rejoined new primary as follower", "primary", newPrimary, "epoch", epoch)
}

// ready answers /readyz for whatever role the node currently plays: a
// promoted (or born-primary) node is ready, a replica once its snapshot
// is installed and its lag is within maxLag.
func (rm *roleMgr) ready(maxLag uint64) bool {
	rm.mu.Lock()
	f, pr := rm.follower, rm.promoted
	rm.mu.Unlock()
	if pr != nil || f == nil {
		return true
	}
	return f.Ready(maxLag)
}
