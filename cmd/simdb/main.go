// Command simdb is an interactive shell for SIM databases, in the spirit
// of the paper's IQF query facility.
//
// Usage:
//
//	simdb [-db file] [-schema ddl-file] [-e statement]
//
// Without -e it reads statements from standard input; a statement ends
// with '.' or ';' at the end of a line. Shell commands:
//
//	\schema           print the schema summary
//	\classes          list classes and their attributes
//	\explain <query>  show the optimizer's strategy
//	\check            run every VERIFY assertion over the whole database
//	\quit             exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sim"
	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/parser"
)

func main() {
	dbPath := flag.String("db", "", "database file (empty: in-memory)")
	schemaFile := flag.String("schema", "", "DDL file to define at startup")
	stmt := flag.String("e", "", "execute one statement and exit")
	flag.Parse()

	db, err := sim.Open(*dbPath, sim.Config{})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *schemaFile != "" {
		ddl, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		if err := db.DefineSchema(string(ddl)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "schema %s defined\n", *schemaFile)
	}

	if *stmt != "" {
		if err := run(db, *stmt); err != nil {
			fatal(err)
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sim> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !command(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ".") || strings.HasSuffix(trimmed, ";") {
			if err := run(db, buf.String()); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			buf.Reset()
		}
		prompt()
	}
}

// command handles a backslash command; it returns false to exit.
func command(db *sim.Database, line string) bool {
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case `\quit`, `\q`:
		return false
	case `\schema`:
		fmt.Print(db.SchemaSummary())
	case `\classes`:
		printClasses(db)
	case `\explain`:
		ex, err := db.Explain(rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Println(ex)
		}
	case `\check`:
		if err := db.CheckIntegrity(); err != nil {
			fmt.Fprintln(os.Stderr, "violation:", err)
		} else {
			fmt.Println("all assertions hold")
		}
	case `\help`:
		fmt.Println(`statements end with '.' or ';'
DDL:  Type/Class/Subclass/Verify declarations (via -schema or pasted)
DML:  Retrieve / Insert / Modify / Delete
commands: \schema \classes \explain <q> \check \quit`)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s (try \\help)\n", cmd)
	}
	return true
}

// run executes one input chunk: DDL if it parses as a schema, otherwise
// DML.
func run(db *sim.Database, text string) error {
	trimmed := strings.TrimSpace(strings.ToLower(text))
	if strings.HasPrefix(trimmed, "class") || strings.HasPrefix(trimmed, "subclass") ||
		strings.HasPrefix(trimmed, "type") || strings.HasPrefix(trimmed, "verify") {
		if err := db.DefineSchema(text); err != nil {
			return err
		}
		fmt.Println("schema updated")
		return nil
	}
	stmt, err := parser.ParseStmt(text)
	if err != nil {
		return err
	}
	if ret, ok := stmt.(*ast.RetrieveStmt); ok {
		r, err := db.Query(text)
		if err != nil {
			return err
		}
		if ret.Mode == ast.OutputStructure {
			fmt.Print(r.FormatStructured())
		} else {
			fmt.Print(r.Format())
		}
		fmt.Printf("(%d rows)\n", r.NumRows())
		return nil
	}
	n, err := db.Exec(text)
	if err != nil {
		return err
	}
	fmt.Printf("%d entity(ies) affected\n", n)
	return nil
}

func printClasses(db *sim.Database) {
	for _, cl := range db.Catalog().Classes() {
		kind := "class"
		if !cl.IsBase() {
			supers := make([]string, len(cl.Supers))
			for i, s := range cl.Supers {
				supers[i] = s.Name
			}
			kind = "subclass of " + strings.Join(supers, ", ")
		}
		fmt.Printf("%s (%s)\n", cl.Name, kind)
		for _, a := range cl.Attrs {
			if a.Implicit {
				continue
			}
			switch a.Kind {
			case catalog.EVA:
				inv := ""
				if a.Inverse != nil && !a.Inverse.Implicit {
					inv = " inverse is " + a.Inverse.Name
				}
				fmt.Printf("  %s: %s%s%s\n", a.Name, a.Range.Name, inv, optstr(a))
			case catalog.Subrole:
				names := make([]string, len(a.SubroleOf))
				for i, s := range a.SubroleOf {
					names[i] = s.Name
				}
				fmt.Printf("  %s: subrole (%s)%s\n", a.Name, strings.Join(names, ", "), optstr(a))
			case catalog.Derived:
				fmt.Printf("  %s: derived\n", a.Name)
			default:
				fmt.Printf("  %s: %s%s\n", a.Name, a.Type, optstr(a))
			}
		}
	}
}

func optstr(a *catalog.Attribute) string {
	var parts []string
	o := a.Options
	if o.Required {
		parts = append(parts, "required")
	}
	if o.Unique {
		parts = append(parts, "unique")
	}
	if o.MV {
		mv := "mv"
		if o.Max > 0 {
			mv = fmt.Sprintf("mv (max %d)", o.Max)
		}
		parts = append(parts, mv)
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, ", ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simdb:", err)
	os.Exit(1)
}
