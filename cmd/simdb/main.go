// Command simdb is an interactive shell for SIM databases, in the spirit
// of the paper's IQF query facility.
//
// Usage:
//
//	simdb [-db file] [-schema ddl-file] [-connect host:port[,host:port...]] [-e script]
//
// With -connect the shell becomes a remote front end to a simserve
// process — the paper's Figure 1 boundary between interface products and
// the shared SIM kernel — and the -db/-schema flags do not apply (the
// server owns the database and its schema). A comma-separated -connect
// treats the first address as the primary and the rest as read replicas:
// reads (including \explain and \analyze) are sprayed across the
// replicas, writes and transactions go to the primary.
//
// Without -e it reads statements from standard input; a statement ends
// with '.' or ';' at the end of a line. With -e it runs the given script
// (one or more statements), printing results to stdout; any statement
// error goes to stderr and exits nonzero. Shell commands:
//
//	\schema           print the schema summary (local only)
//	\classes          list classes and their attributes (local only)
//	\explain <query>  show the optimizer's strategy
//	\analyze <query>  execute the query and show the measured per-node profile
//	\timing [on|off]  print span timings (parse/plan/exec) after each query
//	\check            run every VERIFY assertion (local only)
//	\verify           audit storage: page checksums + full structure scan (local only)
//	\stats            print server counters (remote) or engine stats (local)
//	\replicas         print replication role, epoch, positions and per-follower lag (remote)
//	\promote          promote the connected replica to primary (remote)
//	\retarget e addr  fence a stale primary / re-point a replica at addr under epoch e (remote)
//	\flight           dump the flight recorder (recent structured engine events)
//	\hot              show the latch contention profile (waits and conflicts)
//	\quit             exit
//
// \analyze and \timing work both locally and over -connect; remotely the
// spans are measured server-side and shipped back on the wire.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sim"
	"sim/client"
	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/parser"
	"sim/internal/wire"
)

// session is the slice of the database API the shell needs; *sim.Database
// provides it in-process and *client.Conn provides it over the wire.
type session interface {
	Query(dml string) (*sim.Result, error)
	Exec(dml string) (int, error)
	Explain(dml string) (string, error)
	ExplainAnalyze(dml string) (string, error)
}

// shellTx is the transaction slice the shell needs. *client.Tx satisfies
// it directly; localTx adapts *sim.Tx (whose Commit/Rollback take no
// context — the local engine finishes them without network I/O).
type shellTx interface {
	Query(ctx context.Context, dml string) (*sim.Result, error)
	Exec(ctx context.Context, dml string) (int, error)
	Commit(ctx context.Context) error
	Rollback(ctx context.Context) error
}

type localTx struct{ *sim.Tx }

func (l localTx) Commit(context.Context) error   { return l.Tx.Commit() }
func (l localTx) Rollback(context.Context) error { return l.Tx.Rollback() }

// shell is the interactive state: the session plus its open transaction,
// if any (BEGIN ... COMMIT/ROLLBACK).
type shell struct {
	sess session
	tx   shellTx
}

// begin opens an explicit transaction on the session.
func (sh *shell) begin(ctx context.Context) error {
	if sh.tx != nil {
		return fmt.Errorf("a transaction is already open (COMMIT or ROLLBACK it first)")
	}
	switch v := sh.sess.(type) {
	case *sim.Database:
		tx, err := v.Begin(ctx)
		if err != nil {
			return err
		}
		sh.tx = localTx{tx}
	case *client.Conn:
		tx, err := v.Begin(ctx)
		if err != nil {
			return err
		}
		sh.tx = tx
	case *client.Multi:
		tx, err := v.Begin(ctx)
		if err != nil {
			return err
		}
		sh.tx = tx
	default:
		return fmt.Errorf("this session does not support transactions")
	}
	return nil
}

// finish commits (commit=true) or rolls back the open transaction.
func (sh *shell) finish(ctx context.Context, commit bool) error {
	if sh.tx == nil {
		return fmt.Errorf("no transaction is open (BEGIN first)")
	}
	tx := sh.tx
	sh.tx = nil
	if commit {
		return tx.Commit(ctx)
	}
	return tx.Rollback(ctx)
}

// timing controls the per-query span line (\timing on|off).
var timing bool

func main() {
	dbPath := flag.String("db", "", "database file (empty: in-memory)")
	schemaFile := flag.String("schema", "", "DDL file to define at startup")
	connect := flag.String("connect", "", "simserve address(es) to use instead of a local database; comma-separated = primary,replica,...")
	stmt := flag.String("e", "", "execute a script of statements and exit")
	flag.Parse()

	var sess session
	if *connect != "" {
		if *dbPath != "" || *schemaFile != "" {
			fatal(fmt.Errorf("-connect is exclusive with -db/-schema (the server owns the database)"))
		}
		if addrs := strings.Split(*connect, ","); len(addrs) > 1 {
			m, err := client.DialMulti(addrs)
			if err != nil {
				fatal(err)
			}
			defer m.Close()
			sess = m
		} else {
			conn, err := client.Dial(*connect)
			if err != nil {
				fatal(err)
			}
			defer conn.Close()
			sess = conn
		}
	} else {
		db, err := sim.Open(*dbPath, sim.Config{})
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		if *schemaFile != "" {
			ddl, err := os.ReadFile(*schemaFile)
			if err != nil {
				fatal(err)
			}
			if err := db.DefineSchema(string(ddl)); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "schema %s defined\n", *schemaFile)
		}
		sess = db
	}

	sh := &shell{sess: sess}
	defer func() {
		// An open transaction at exit (EOF, \quit) is rolled back, like a
		// dropped server connection.
		if sh.tx != nil {
			if err := sh.finish(context.Background(), false); err != nil {
				fmt.Fprintln(os.Stderr, "rollback at exit:", err)
			} else {
				fmt.Fprintln(os.Stderr, "open transaction rolled back at exit")
			}
		}
	}()

	if *stmt != "" {
		if err := runScript(sh, *stmt); err != nil {
			fatal(err)
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		switch {
		case buf.Len() > 0:
			fmt.Print("...> ")
		case sh.tx != nil:
			fmt.Print("txn> ")
		default:
			fmt.Print("sim> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !command(sh, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ".") || strings.HasSuffix(trimmed, ";") {
			if err := run(sh, buf.String()); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			buf.Reset()
		}
		prompt()
	}
}

// command handles a backslash command; it returns false to exit.
func command(sh *shell, line string) bool {
	s := sh.sess
	db, local := s.(*sim.Database)
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case `\quit`, `\q`:
		return false
	case `\schema`:
		if !local {
			fmt.Fprintln(os.Stderr, `\schema needs a local database (remote sessions query the server's schema via DML)`)
			break
		}
		fmt.Print(db.SchemaSummary())
	case `\classes`:
		if !local {
			fmt.Fprintln(os.Stderr, `\classes needs a local database`)
			break
		}
		printClasses(db)
	case `\explain`:
		ex, err := s.Explain(rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Println(ex)
		}
	case `\analyze`:
		out, err := s.ExplainAnalyze(rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Print(out)
		}
	case `\timing`:
		switch strings.TrimSpace(rest) {
		case "on":
			timing = true
		case "off":
			timing = false
		case "":
			timing = !timing
		default:
			fmt.Fprintf(os.Stderr, "usage: \\timing [on|off]\n")
			return true
		}
		if timing {
			fmt.Println("timing on")
		} else {
			fmt.Println("timing off")
		}
	case `\check`:
		if !local {
			fmt.Fprintln(os.Stderr, `\check needs a local database`)
			break
		}
		if err := db.CheckIntegrity(); err != nil {
			fmt.Fprintln(os.Stderr, "violation:", err)
		} else {
			fmt.Println("all assertions hold")
		}
	case `\verify`:
		if !local {
			fmt.Fprintln(os.Stderr, `\verify needs a local database`)
			break
		}
		rep, err := db.Scrub()
		if err != nil || !rep.OK() {
			// A failed audit is exactly when the recent-event context
			// matters; dump the flight recorder alongside the report.
			fmt.Fprint(os.Stderr, db.FlightRecorder().Dump())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			break
		}
		fmt.Println(rep)
	case `\flight`:
		if local {
			fmt.Print(db.FlightRecorder().Dump())
			break
		}
		introspect(s, wire.IntrospectFlight)
	case `\hot`:
		if local {
			fmt.Print(db.HotReport())
			break
		}
		introspect(s, wire.IntrospectHot)
	case `\stats`:
		if conn := remoteConn(s); conn != nil {
			st, err := conn.ServerStats(context.Background())
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println(st)
			}
			break
		}
		st := db.Stats()
		fmt.Printf("pool: hits=%d misses=%d  plans: hits=%d misses=%d\n",
			st.Pool.Hits, st.Pool.Misses, st.Plans.Hits, st.Plans.Misses)
		fmt.Printf("luc-cache: hits=%d misses=%d  exec: queries=%d rows=%d instances=%d\n",
			st.Cache.Hits, st.Cache.Misses, st.Exec.Queries, st.Exec.Rows, st.Exec.Instances)
	case `\replicas`:
		if conn := remoteConn(s); conn != nil {
			st, err := conn.ReplStatus(context.Background())
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println(st)
			}
			break
		}
		fmt.Println("role=local (replication runs under simserve; use -connect)")
	case `\promote`:
		conn := remoteConn(s)
		if conn == nil {
			fmt.Fprintln(os.Stderr, `\promote needs a remote session (use -connect with the replica's address)`)
			break
		}
		epoch, err := conn.Promote(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			break
		}
		fmt.Printf("promoted: %s is primary at epoch %d\n", conn.Addr(), epoch)
	case `\retarget`:
		conn := remoteConn(s)
		if conn == nil {
			fmt.Fprintln(os.Stderr, `\retarget needs a remote session`)
			break
		}
		epochStr, addr, _ := strings.Cut(strings.TrimSpace(rest), " ")
		epoch, perr := strconv.ParseUint(epochStr, 10, 64)
		if perr != nil || strings.TrimSpace(addr) == "" {
			fmt.Fprintln(os.Stderr, `usage: \retarget <epoch> <primary-addr> — fence a stale primary / re-point a replica`)
			break
		}
		if err := conn.Retarget(context.Background(), epoch, strings.TrimSpace(addr)); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			break
		}
		fmt.Printf("retargeted %s to %s (epoch %d)\n", conn.Addr(), strings.TrimSpace(addr), epoch)
	case `\help`:
		fmt.Println(`statements end with '.' or ';'
DDL:  Type/Class/Subclass/Verify declarations (via -schema or pasted; local only)
DML:  Retrieve / Insert / Modify / Delete
TXN:  Begin [Transaction] / Commit / Rollback (prompt shows txn> while open)
commands: \schema \classes \explain <q> \analyze <q> \timing [on|off] \check \verify \stats \replicas \promote \retarget <epoch> <addr> \flight \hot \quit`)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s (try \\help)\n", cmd)
	}
	return true
}

// remoteConn returns the server connection behind a remote session — the
// connection itself, or a Multi's primary — and nil for a local database.
func remoteConn(s session) *client.Conn {
	switch v := s.(type) {
	case *client.Conn:
		return v
	case *client.Multi:
		return v.Primary()
	}
	return nil
}

// introspect prints a server-rendered introspection report (\flight, \hot)
// from the remote session's primary.
func introspect(s session, kind byte) {
	conn := remoteConn(s)
	if conn == nil {
		fmt.Fprintln(os.Stderr, "this session has no server to introspect")
		return
	}
	out, err := conn.Introspect(context.Background(), kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Print(out)
}

// isDDL reports whether an input chunk starts like schema definition
// language rather than DML.
func isDDL(text string) bool {
	trimmed := strings.TrimSpace(strings.ToLower(text))
	for _, kw := range []string{"class", "subclass", "type", "verify"} {
		if strings.HasPrefix(trimmed, kw) {
			return true
		}
	}
	return false
}

// run executes one input chunk: DDL if it looks like a schema, otherwise
// a single statement (DML or transaction control).
func run(sh *shell, text string) error {
	ctx := context.Background()
	if isDDL(text) {
		db, local := sh.sess.(*sim.Database)
		if !local {
			return fmt.Errorf("schema changes are not supported over -connect; define the schema on the server (simserve -schema)")
		}
		if sh.tx != nil {
			return fmt.Errorf("schema changes inside a transaction are not supported; COMMIT or ROLLBACK first")
		}
		if err := db.DefineSchema(text); err != nil {
			return err
		}
		fmt.Println("schema updated")
		return nil
	}
	stmt, err := parser.ParseStmt(text)
	if err != nil {
		return err
	}
	switch ret := stmt.(type) {
	case *ast.BeginStmt:
		if err := sh.begin(ctx); err != nil {
			return err
		}
		fmt.Println("transaction open")
		return nil
	case *ast.CommitStmt:
		if err := sh.finish(ctx, true); err != nil {
			return err
		}
		fmt.Println("committed")
		return nil
	case *ast.RollbackStmt:
		if err := sh.finish(ctx, false); err != nil {
			return err
		}
		fmt.Println("rolled back")
		return nil
	case *ast.RetrieveStmt:
		var r *sim.Result
		var spans string
		switch {
		case sh.tx != nil:
			r, err = sh.tx.Query(ctx, text)
		case timing:
			r, spans, err = timedQuery(sh.sess, text)
		default:
			r, err = sh.sess.Query(text)
		}
		if err != nil {
			return err
		}
		if ret.Mode == ast.OutputStructure {
			fmt.Print(r.FormatStructured())
		} else {
			fmt.Print(r.Format())
		}
		fmt.Printf("(%d rows)\n", r.NumRows())
		if spans != "" {
			fmt.Println(spans)
		}
		return nil
	}
	var n int
	if sh.tx != nil {
		n, err = sh.tx.Exec(ctx, text)
	} else {
		n, err = sh.sess.Exec(text)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%d entity(ies) affected\n", n)
	return nil
}

// timedQuery runs one Retrieve with span collection: locally through
// Database.QueryTrace, remotely through the QueryTrace frame (spans are
// measured on the server).
func timedQuery(s session, text string) (*sim.Result, string, error) {
	switch v := s.(type) {
	case *sim.Database:
		r, tr, err := v.QueryTrace(text)
		if err != nil {
			return nil, "", err
		}
		plan := tr.Plan.String()
		if tr.PlanCached {
			plan += " (cached)"
		}
		return r, fmt.Sprintf("time: parse %v  plan %s  exec %v  total %v",
			tr.Parse, plan, tr.Exec, tr.Total), nil
	case *client.Conn:
		r, ti, err := v.QueryTrace(text)
		if err != nil {
			return nil, "", err
		}
		return r, "server " + ti.String(), nil
	case *client.Multi:
		r, ti, err := v.QueryTrace(text)
		if err != nil {
			return nil, "", err
		}
		return r, "server " + ti.String(), nil
	default:
		r, err := s.Query(text)
		return r, "", err
	}
}

// runScript executes the -e argument: a DDL batch, or a script of one or
// more statements executed in order (BEGIN/COMMIT/ROLLBACK group the
// statements between them into one transaction). Results go to stdout;
// the first failing statement's error is returned (the caller routes it
// to stderr and exits nonzero) without executing the rest, and any
// transaction still open — after a failure or at the end of the script —
// is rolled back.
func runScript(sh *shell, text string) error {
	if isDDL(text) {
		return run(sh, text)
	}
	stmts, err := parser.SplitStmts(text)
	if err != nil {
		return err
	}
	defer func() {
		if sh.tx != nil {
			if rerr := sh.finish(context.Background(), false); rerr != nil {
				fmt.Fprintln(os.Stderr, "rollback at script end:", rerr)
			} else {
				fmt.Fprintln(os.Stderr, "open transaction rolled back at script end")
			}
		}
	}()
	for i, one := range stmts {
		if err := run(sh, one); err != nil {
			if len(stmts) > 1 {
				return fmt.Errorf("statement %d: %w", i+1, err)
			}
			return err
		}
	}
	return nil
}

func printClasses(db *sim.Database) {
	for _, cl := range db.Catalog().Classes() {
		kind := "class"
		if !cl.IsBase() {
			supers := make([]string, len(cl.Supers))
			for i, s := range cl.Supers {
				supers[i] = s.Name
			}
			kind = "subclass of " + strings.Join(supers, ", ")
		}
		fmt.Printf("%s (%s)\n", cl.Name, kind)
		for _, a := range cl.Attrs {
			if a.Implicit {
				continue
			}
			switch a.Kind {
			case catalog.EVA:
				inv := ""
				if a.Inverse != nil && !a.Inverse.Implicit {
					inv = " inverse is " + a.Inverse.Name
				}
				fmt.Printf("  %s: %s%s%s\n", a.Name, a.Range.Name, inv, optstr(a))
			case catalog.Subrole:
				names := make([]string, len(a.SubroleOf))
				for i, s := range a.SubroleOf {
					names[i] = s.Name
				}
				fmt.Printf("  %s: subrole (%s)%s\n", a.Name, strings.Join(names, ", "), optstr(a))
			case catalog.Derived:
				fmt.Printf("  %s: derived\n", a.Name)
			default:
				fmt.Printf("  %s: %s%s\n", a.Name, a.Type, optstr(a))
			}
		}
	}
}

func optstr(a *catalog.Attribute) string {
	var parts []string
	o := a.Options
	if o.Required {
		parts = append(parts, "required")
	}
	if o.Unique {
		parts = append(parts, "unique")
	}
	if o.MV {
		mv := "mv"
		if o.Max > 0 {
			mv = fmt.Sprintf("mv (max %d)", o.Max)
		}
		parts = append(parts, mv)
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, ", ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simdb:", err)
	os.Exit(1)
}
