// Command simdb is an interactive shell for SIM databases, in the spirit
// of the paper's IQF query facility.
//
// Usage:
//
//	simdb [-db file] [-schema ddl-file] [-connect host:port] [-e script]
//
// With -connect the shell becomes a remote front end to a simserve
// process — the paper's Figure 1 boundary between interface products and
// the shared SIM kernel — and the -db/-schema flags do not apply (the
// server owns the database and its schema).
//
// Without -e it reads statements from standard input; a statement ends
// with '.' or ';' at the end of a line. With -e it runs the given script
// (one or more statements), printing results to stdout; any statement
// error goes to stderr and exits nonzero. Shell commands:
//
//	\schema           print the schema summary (local only)
//	\classes          list classes and their attributes (local only)
//	\explain <query>  show the optimizer's strategy
//	\analyze <query>  execute the query and show the measured per-node profile
//	\timing [on|off]  print span timings (parse/plan/exec) after each query
//	\check            run every VERIFY assertion (local only)
//	\verify           audit storage: page checksums + full structure scan (local only)
//	\stats            print server counters (remote) or engine stats (local)
//	\quit             exit
//
// \analyze and \timing work both locally and over -connect; remotely the
// spans are measured server-side and shipped back on the wire.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"sim"
	"sim/client"
	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/parser"
)

// session is the slice of the database API the shell needs; *sim.Database
// provides it in-process and *client.Conn provides it over the wire.
type session interface {
	Query(dml string) (*sim.Result, error)
	Exec(dml string) (int, error)
	Explain(dml string) (string, error)
	ExplainAnalyze(dml string) (string, error)
}

// timing controls the per-query span line (\timing on|off).
var timing bool

func main() {
	dbPath := flag.String("db", "", "database file (empty: in-memory)")
	schemaFile := flag.String("schema", "", "DDL file to define at startup")
	connect := flag.String("connect", "", "host:port of a simserve to use instead of a local database")
	stmt := flag.String("e", "", "execute a script of statements and exit")
	flag.Parse()

	var sess session
	if *connect != "" {
		if *dbPath != "" || *schemaFile != "" {
			fatal(fmt.Errorf("-connect is exclusive with -db/-schema (the server owns the database)"))
		}
		conn, err := client.Dial(*connect)
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		sess = conn
	} else {
		db, err := sim.Open(*dbPath, sim.Config{})
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		if *schemaFile != "" {
			ddl, err := os.ReadFile(*schemaFile)
			if err != nil {
				fatal(err)
			}
			if err := db.DefineSchema(string(ddl)); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "schema %s defined\n", *schemaFile)
		}
		sess = db
	}

	if *stmt != "" {
		if err := runScript(sess, *stmt); err != nil {
			fatal(err)
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sim> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !command(sess, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ".") || strings.HasSuffix(trimmed, ";") {
			if err := run(sess, buf.String()); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			buf.Reset()
		}
		prompt()
	}
}

// command handles a backslash command; it returns false to exit.
func command(s session, line string) bool {
	db, local := s.(*sim.Database)
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case `\quit`, `\q`:
		return false
	case `\schema`:
		if !local {
			fmt.Fprintln(os.Stderr, `\schema needs a local database (remote sessions query the server's schema via DML)`)
			break
		}
		fmt.Print(db.SchemaSummary())
	case `\classes`:
		if !local {
			fmt.Fprintln(os.Stderr, `\classes needs a local database`)
			break
		}
		printClasses(db)
	case `\explain`:
		ex, err := s.Explain(rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Println(ex)
		}
	case `\analyze`:
		out, err := s.ExplainAnalyze(rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else {
			fmt.Print(out)
		}
	case `\timing`:
		switch strings.TrimSpace(rest) {
		case "on":
			timing = true
		case "off":
			timing = false
		case "":
			timing = !timing
		default:
			fmt.Fprintf(os.Stderr, "usage: \\timing [on|off]\n")
			return true
		}
		if timing {
			fmt.Println("timing on")
		} else {
			fmt.Println("timing off")
		}
	case `\check`:
		if !local {
			fmt.Fprintln(os.Stderr, `\check needs a local database`)
			break
		}
		if err := db.CheckIntegrity(); err != nil {
			fmt.Fprintln(os.Stderr, "violation:", err)
		} else {
			fmt.Println("all assertions hold")
		}
	case `\verify`:
		if !local {
			fmt.Fprintln(os.Stderr, `\verify needs a local database`)
			break
		}
		rep, err := db.Scrub()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			break
		}
		fmt.Println(rep)
	case `\stats`:
		if conn, ok := s.(*client.Conn); ok {
			st, err := conn.ServerStats(context.Background())
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println(st)
			}
			break
		}
		st := db.Stats()
		fmt.Printf("pool: hits=%d misses=%d  plans: hits=%d misses=%d\n",
			st.Pool.Hits, st.Pool.Misses, st.Plans.Hits, st.Plans.Misses)
		fmt.Printf("luc-cache: hits=%d misses=%d  exec: queries=%d rows=%d instances=%d\n",
			st.Cache.Hits, st.Cache.Misses, st.Exec.Queries, st.Exec.Rows, st.Exec.Instances)
	case `\help`:
		fmt.Println(`statements end with '.' or ';'
DDL:  Type/Class/Subclass/Verify declarations (via -schema or pasted; local only)
DML:  Retrieve / Insert / Modify / Delete
commands: \schema \classes \explain <q> \analyze <q> \timing [on|off] \check \verify \stats \quit`)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s (try \\help)\n", cmd)
	}
	return true
}

// isDDL reports whether an input chunk starts like schema definition
// language rather than DML.
func isDDL(text string) bool {
	trimmed := strings.TrimSpace(strings.ToLower(text))
	for _, kw := range []string{"class", "subclass", "type", "verify"} {
		if strings.HasPrefix(trimmed, kw) {
			return true
		}
	}
	return false
}

// run executes one input chunk: DDL if it looks like a schema, otherwise
// a single DML statement.
func run(s session, text string) error {
	if isDDL(text) {
		db, local := s.(*sim.Database)
		if !local {
			return fmt.Errorf("schema changes are not supported over -connect; define the schema on the server (simserve -schema)")
		}
		if err := db.DefineSchema(text); err != nil {
			return err
		}
		fmt.Println("schema updated")
		return nil
	}
	stmt, err := parser.ParseStmt(text)
	if err != nil {
		return err
	}
	if ret, ok := stmt.(*ast.RetrieveStmt); ok {
		var r *sim.Result
		var spans string
		if timing {
			r, spans, err = timedQuery(s, text)
		} else {
			r, err = s.Query(text)
		}
		if err != nil {
			return err
		}
		if ret.Mode == ast.OutputStructure {
			fmt.Print(r.FormatStructured())
		} else {
			fmt.Print(r.Format())
		}
		fmt.Printf("(%d rows)\n", r.NumRows())
		if spans != "" {
			fmt.Println(spans)
		}
		return nil
	}
	n, err := s.Exec(text)
	if err != nil {
		return err
	}
	fmt.Printf("%d entity(ies) affected\n", n)
	return nil
}

// timedQuery runs one Retrieve with span collection: locally through
// Database.QueryTrace, remotely through the QueryTrace frame (spans are
// measured on the server).
func timedQuery(s session, text string) (*sim.Result, string, error) {
	switch v := s.(type) {
	case *sim.Database:
		r, tr, err := v.QueryTrace(text)
		if err != nil {
			return nil, "", err
		}
		plan := tr.Plan.String()
		if tr.PlanCached {
			plan += " (cached)"
		}
		return r, fmt.Sprintf("time: parse %v  plan %s  exec %v  total %v",
			tr.Parse, plan, tr.Exec, tr.Total), nil
	case *client.Conn:
		r, ti, err := v.QueryTrace(text)
		if err != nil {
			return nil, "", err
		}
		return r, "server " + ti.String(), nil
	default:
		r, err := s.Query(text)
		return r, "", err
	}
}

// runScript executes the -e argument: a DDL batch, or a script of one or
// more DML statements executed in order. Results go to stdout; the first
// failing statement's error is returned (the caller routes it to stderr
// and exits nonzero) without executing the rest.
func runScript(s session, text string) error {
	if isDDL(text) {
		return run(s, text)
	}
	stmts, err := parser.SplitStmts(text)
	if err != nil {
		return err
	}
	for i, one := range stmts {
		if err := run(s, one); err != nil {
			if len(stmts) > 1 {
				return fmt.Errorf("statement %d: %w", i+1, err)
			}
			return err
		}
	}
	return nil
}

func printClasses(db *sim.Database) {
	for _, cl := range db.Catalog().Classes() {
		kind := "class"
		if !cl.IsBase() {
			supers := make([]string, len(cl.Supers))
			for i, s := range cl.Supers {
				supers[i] = s.Name
			}
			kind = "subclass of " + strings.Join(supers, ", ")
		}
		fmt.Printf("%s (%s)\n", cl.Name, kind)
		for _, a := range cl.Attrs {
			if a.Implicit {
				continue
			}
			switch a.Kind {
			case catalog.EVA:
				inv := ""
				if a.Inverse != nil && !a.Inverse.Implicit {
					inv = " inverse is " + a.Inverse.Name
				}
				fmt.Printf("  %s: %s%s%s\n", a.Name, a.Range.Name, inv, optstr(a))
			case catalog.Subrole:
				names := make([]string, len(a.SubroleOf))
				for i, s := range a.SubroleOf {
					names[i] = s.Name
				}
				fmt.Printf("  %s: subrole (%s)%s\n", a.Name, strings.Join(names, ", "), optstr(a))
			case catalog.Derived:
				fmt.Printf("  %s: derived\n", a.Name)
			default:
				fmt.Printf("  %s: %s%s\n", a.Name, a.Type, optstr(a))
			}
		}
	}
}

func optstr(a *catalog.Attribute) string {
	var parts []string
	o := a.Options
	if o.Required {
		parts = append(parts, "required")
	}
	if o.Unique {
		parts = append(parts, "unique")
	}
	if o.MV {
		mv := "mv"
		if o.Max > 0 {
			mv = fmt.Sprintf("mv (max %d)", o.Max)
		}
		parts = append(parts, mv)
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, ", ") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simdb:", err)
	os.Exit(1)
}
