package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"sim"
	"sim/internal/university"
)

// captureStdout runs f with os.Stdout redirected to a pipe.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.String()
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

// sh wraps a session in fresh shell state for one call.
func sh(s session) *shell { return &shell{sess: s} }

func testDB(t *testing.T) *sim.Database {
	t.Helper()
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.DefineSchema(university.DDL); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRunDDLAndDML(t *testing.T) {
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out := captureStdout(t, func() {
		if err := run(sh(db), `Class Widget ( wname: string[10] required );`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "schema updated") {
		t.Errorf("DDL output = %q", out)
	}
	out = captureStdout(t, func() {
		if err := run(sh(db), `Insert widget (wname := "gear").`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "1 entity") {
		t.Errorf("insert output = %q", out)
	}
	out = captureStdout(t, func() {
		if err := run(sh(db), `From widget Retrieve wname.`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "gear") || !strings.Contains(out, "(1 rows)") {
		t.Errorf("query output = %q", out)
	}
}

func TestRunStructuredOutput(t *testing.T) {
	db := testDB(t)
	captureStdout(t, func() { run(sh(db), `Insert department (dept-nbr := 100, name := "Physics").`) })
	out := captureStdout(t, func() {
		if err := run(sh(db), `From department Retrieve Structure name.`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "Physics") {
		t.Errorf("structured output = %q", out)
	}
}

func TestRunReportsErrors(t *testing.T) {
	db := testDB(t)
	if err := run(sh(db), `From nowhere Retrieve x.`); err == nil {
		t.Error("bad query did not error")
	}
	if err := run(sh(db), `not a statement at all.`); err == nil {
		t.Error("garbage did not error")
	}
}

func TestCommands(t *testing.T) {
	db := testDB(t)
	out := captureStdout(t, func() { command(sh(db), `\schema`) })
	if !strings.Contains(out, "base classes: 3") {
		t.Errorf("\\schema output = %q", out)
	}
	out = captureStdout(t, func() { command(sh(db), `\classes`) })
	for _, want := range []string{"Person (class)", "Student (subclass of Person)", "advisor: Instructor inverse is advisees", "profession: subrole"} {
		if !strings.Contains(out, want) {
			t.Errorf("\\classes output missing %q:\n%s", want, out)
		}
	}
	for i := 1; i <= 6; i++ {
		stmt := `Insert person (name := "P", soc-sec-no := ` + string(rune('0'+i)) + `).`
		captureStdout(t, func() { run(sh(db), stmt) })
	}
	out = captureStdout(t, func() { command(sh(db), `\explain From person Retrieve name Where soc-sec-no = 1.`) })
	if !strings.Contains(out, "unique lookup") {
		t.Errorf("\\explain output = %q", out)
	}
	out = captureStdout(t, func() { command(sh(db), `\check`) })
	if !strings.Contains(out, "hold") {
		t.Errorf("\\check output = %q", out)
	}
	if command(sh(db), `\quit`) {
		t.Error("\\quit did not signal exit")
	}
	out = captureStdout(t, func() { command(sh(db), `\help`) })
	if !strings.Contains(out, "Retrieve") {
		t.Errorf("\\help output = %q", out)
	}
}

// scriptDB is testDB plus a department to retrieve against.
func scriptDB(t *testing.T) *sim.Database {
	db := testDB(t)
	if _, err := db.Exec(`Insert department (dept-nbr := 100, name := "Math").`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRunScriptMultiStatement(t *testing.T) {
	db := scriptDB(t)
	out := captureStdout(t, func() {
		err := runScript(sh(db), `
			Insert department (dept-nbr := 200, name := "Physics").
			From department Retrieve name Order By name.
		`)
		if err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"1 entity(ies) affected", "Math", "Physics", "(2 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("script output missing %q:\n%s", want, out)
		}
	}
}

func TestRunScriptStopsAtFirstError(t *testing.T) {
	db := scriptDB(t)
	var err error
	captureStdout(t, func() {
		err = runScript(sh(db), `
			Insert department (dept-nbr := 300, name := "Chem").
			Insert department (dept-nbr := 300, name := "Dup").
			Insert department (dept-nbr := 400, name := "Never").
		`)
	})
	if err == nil {
		t.Fatal("duplicate dept-nbr accepted")
	}
	if !strings.Contains(err.Error(), "statement 2") {
		t.Errorf("error %q does not name the failing statement", err)
	}
	// Statement 1 ran; statement 3 never did.
	r, qerr := db.Query(`From department Retrieve name Order By name.`)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if got := r.Format(); !strings.Contains(got, "Chem") || strings.Contains(got, "Never") {
		t.Errorf("departments after failing script:\n%s", got)
	}
}

func TestRunScriptParseErrorRunsNothing(t *testing.T) {
	db := scriptDB(t)
	var err error
	captureStdout(t, func() {
		err = runScript(sh(db), `
			Insert department (dept-nbr := 500, name := "Ghost").
			this is not SIM at all.
		`)
	})
	if err == nil {
		t.Fatal("script with a parse error succeeded")
	}
	r, qerr := db.Query(`From department Retrieve name Where dept-nbr = 500.`)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if r.NumRows() != 0 {
		t.Error("statement before the parse error was executed")
	}
}

func TestRunScriptTransaction(t *testing.T) {
	db := scriptDB(t)
	// A committed group persists.
	out := captureStdout(t, func() {
		err := runScript(sh(db), `
			Begin Transaction.
			Insert department (dept-nbr := 600, name := "Geo").
			Insert department (dept-nbr := 601, name := "Bio").
			Commit.
		`)
		if err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"transaction open", "committed"} {
		if !strings.Contains(out, want) {
			t.Errorf("txn script output missing %q:\n%s", want, out)
		}
	}
	r, err := db.Query(`From department Retrieve name Order By name.`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Format(); !strings.Contains(got, "Geo") || !strings.Contains(got, "Bio") {
		t.Errorf("committed departments missing:\n%s", got)
	}

	// An explicit ROLLBACK discards the group.
	captureStdout(t, func() {
		if err := runScript(sh(db), `
			Begin.
			Insert department (dept-nbr := 700, name := "Alchemy").
			Rollback.
		`); err != nil {
			t.Error(err)
		}
	})
	// A script ending with an open transaction is rolled back too.
	captureStdout(t, func() {
		if err := runScript(sh(db), `
			Begin.
			Insert department (dept-nbr := 701, name := "Phrenology").
		`); err != nil {
			t.Error(err)
		}
	})
	r, err = db.Query(`From department Retrieve name Order By name.`)
	if err != nil {
		t.Fatal(err)
	}
	for _, gone := range []string{"Alchemy", "Phrenology"} {
		if strings.Contains(r.Format(), gone) {
			t.Errorf("rolled-back department %s persisted", gone)
		}
	}

	// COMMIT without BEGIN is an error.
	var cerr error
	captureStdout(t, func() { cerr = runScript(sh(db), `Commit.`) })
	if cerr == nil || !strings.Contains(cerr.Error(), "no transaction") {
		t.Errorf("bare COMMIT error = %v", cerr)
	}
}

// remoteStub satisfies session without a database, for testing
// remote-mode restrictions without standing up a server.
type remoteStub struct{}

func (remoteStub) Query(string) (*sim.Result, error)     { return nil, nil }
func (remoteStub) Exec(string) (int, error)              { return 0, nil }
func (remoteStub) Explain(string) (string, error)        { return "", nil }
func (remoteStub) ExplainAnalyze(string) (string, error) { return "", nil }

func TestRemoteModeRejectsDDL(t *testing.T) {
	err := run(sh(remoteStub{}), `Class Widget ( wname: string[10] );`)
	if err == nil || !strings.Contains(err.Error(), "simserve -schema") {
		t.Errorf("remote DDL error = %v", err)
	}
}

func TestRemoteModeLocalOnlyCommands(t *testing.T) {
	for _, cmd := range []string{`\schema`, `\classes`, `\check`} {
		out := captureStdout(t, func() {
			if !command(sh(remoteStub{}), cmd) {
				t.Errorf("%s signalled exit", cmd)
			}
		})
		if out != "" {
			t.Errorf("%s printed to stdout in remote mode: %q", cmd, out)
		}
	}
}
