// Package sim is a database management system based on the semantic data
// model of Jagannathan et al., "SIM: A Database System Based on the
// Semantic Data Model" (SIGMOD 1988).
//
// A SIM database is defined by a schema of classes and subclasses forming
// a generalization DAG, with data-valued and entity-valued attributes
// (EVAs carry system-maintained inverses), attribute options (REQUIRED,
// UNIQUE, MV, DISTINCT, MAX) and class-level VERIFY assertions. Data is
// manipulated through the English-like DML of the paper:
//
//	From Student Retrieve Name, Name of Advisor Where Student-Nbr = 1729.
//	Insert student (name := "John Doe", soc-sec-no := 456887766).
//	Modify instructor (salary := 1.1 * salary) Where count(courses-taught) > 2.
//	Delete student Where name = "John Doe".
//
// Open a database with Open (an empty path gives a transient in-memory
// database), define its schema with DefineSchema, then use Query for
// Retrieve statements and Exec for updates. Updates are transactional:
// a failed statement (type error, uniqueness or cardinality violation,
// failed VERIFY assertion) leaves the database unchanged.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/dmsii"
	"sim/internal/exec"
	"sim/internal/integrity"
	"sim/internal/luc"
	"sim/internal/obs"
	"sim/internal/pager"
	"sim/internal/parser"
	"sim/internal/plan"
	"sim/internal/query"
	"sim/internal/wal"
)

// Result is a query result: column names, tabular rows, and — for
// STRUCTURE-mode queries — the fully structured group tree.
type Result = exec.Result

// ExecStats reports executor activity totals, read from the metric
// registry.
type ExecStats struct {
	Queries   uint64 // Retrieve statements executed
	Parallel  uint64 // Retrieves that ran the partitioned parallel path
	Instances uint64 // range-variable bindings tried
	Rows      uint64 // rows emitted
	Updates   uint64 // update statements executed
	Entities  uint64 // entities inserted/modified/deleted
}

// Stats aggregates engine counters for benchmarking and EXPLAIN: buffer
// pool, plan cache, LUC record cache, executor totals and WAL activity.
type Stats struct {
	Pool  pager.Stats
	Plans PlanCacheStats
	Cache luc.CacheStats
	Exec  ExecStats
	WAL   wal.Stats
}

// Config tunes a database instance. The zero value is a valid default
// configuration; Open validates the rest (see Validate).
type Config struct {
	// PoolPages is the buffer pool capacity in 4 KiB pages (default 1024).
	// Negative values are rejected by Validate.
	PoolPages int
	// Workers bounds the goroutines one Retrieve may use to scan its
	// outermost range in parallel. 0 means GOMAXPROCS; 1 forces serial
	// execution; negative values are rejected by Validate. Parallel and
	// serial execution produce identical results.
	Workers int
	// PlanCacheSize is the capacity of the LRU plan cache keyed by DML
	// text (0 means a default of 256; -1 disables caching; other negative
	// values are rejected by Validate).
	PlanCacheSize int
	// Mapping overrides the default physical mapping of §5.2; see
	// luc.Config. It must be identical across openings of one database.
	Mapping luc.Config
	// SlowQuery is the threshold above which finished queries are retained
	// in the slow-query log (see Database.SlowQueries). Zero disables the
	// log.
	SlowQuery time.Duration
	// TreeWalkEval forces queries onto the reference tree-walking
	// evaluator instead of the compiled closure programs. The two produce
	// identical results; the walker exists as the semantic oracle and for
	// debugging, and this switch makes it reachable from benchmarks and
	// differential tests.
	TreeWalkEval bool
}

// ConfigError reports an invalid Config field, by name.
type ConfigError struct {
	Field  string
	Value  int
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid Config.%s %d: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the configuration. Open calls it, so invalid
// configurations fail loudly at open time (a *ConfigError naming the
// field) instead of being silently clamped. Sentinel values (zero for a
// default, PlanCacheSize -1 to disable caching) are valid and resolved in
// one place by normalize.
func (c Config) Validate() error {
	if c.PoolPages < 0 {
		return &ConfigError{Field: "PoolPages", Value: c.PoolPages, Reason: "must be >= 0 (0 means the default of 1024)"}
	}
	if c.Workers < 0 {
		return &ConfigError{Field: "Workers", Value: c.Workers, Reason: "must be >= 0 (0 means GOMAXPROCS, 1 forces serial)"}
	}
	if c.PlanCacheSize < -1 {
		return &ConfigError{Field: "PlanCacheSize", Value: c.PlanCacheSize, Reason: "must be >= -1 (0 means the default of 256, -1 disables)"}
	}
	return nil
}

// normalize resolves the documented sentinels to effective values. Every
// component below this point sees concrete settings; no other layer
// interprets zero or negative configuration values.
func (c Config) normalize() Config {
	if c.PoolPages == 0 {
		c.PoolPages = 1024
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	return c
}

// queryWorkers returns the effective worker count (cfg is normalized).
func (c Config) queryWorkers() int { return c.Workers }

// Database is an open SIM database. Methods are safe for concurrent use:
// each query pins a read snapshot — the latest committed version stamp —
// and traverses copy-on-write page versions as of that stamp, so readers
// never take the store-wide write latch and never block (or are torn by)
// a writer's page mutations. Writers serialize on the store's write
// latch; commit durability (WAL fsync + write-back) happens outside it,
// so concurrent committers share fsyncs (group commit; see Begin and
// internal/dmsii).
//
// Context convention: every operation has a context-first form suffixed
// Ctx (QueryCtx, ExecCtx, ExplainCtx, RunCtx, QueryTraceCtx,
// ExplainAnalyzeCtx). The unsuffixed form is always exactly
// Xxx(args) = XxxCtx(context.Background(), args) — a documented one-line
// wrapper with no behavioral drift between the pair.
type Database struct {
	mu     sync.RWMutex
	store  *dmsii.Store
	cfg    Config
	ddl    []string // schema batches, in definition order
	cat    *catalog.Catalog
	mapper *luc.Mapper
	exe    *exec.Executor
	plans  *planCache

	schemaHook func(gen uint64) // replication: notified after DefineSchema commits

	reg       *obs.Registry  // unified metric registry (see Metrics)
	slow      *obs.SlowLog   // queries over Config.SlowQuery
	queryHist *obs.Histogram // sim_query_seconds
	execHist  *obs.Histogram // sim_update_seconds
	queryErrs *obs.Counter   // sim_query_errors_total
	slowCount *obs.Counter   // sim_slow_queries_total
}

// Open opens (creating if necessary) the database at path; an empty path
// opens a transient in-memory database. Any schema previously defined in
// the file is loaded. The configuration is validated first (see
// Config.Validate).
func Open(path string, cfg Config) (*Database, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	var store *dmsii.Store
	var err error
	opts := dmsii.Options{PoolPages: cfg.PoolPages}
	if path == "" {
		store, err = dmsii.OpenMemory(opts)
	} else {
		store, err = dmsii.OpenFile(path, opts)
	}
	if err != nil {
		return nil, err
	}
	return openStore(store, cfg)
}

// openStore assembles a Database over an already-open substrate store.
// The fault-injection harness uses it (via internal tests) to open
// databases over scripted storage; Open is the production path.
func openStore(store *dmsii.Store, cfg Config) (*Database, error) {
	if err := cfg.Validate(); err != nil {
		store.Close()
		return nil, err
	}
	cfg = cfg.normalize()
	db := &Database{
		store: store,
		cfg:   cfg,
		plans: newPlanCache(cfg.PlanCacheSize),
		reg:   obs.NewRegistry(),
		slow:  obs.NewSlowLog(cfg.SlowQuery),
	}
	db.queryHist = db.reg.Histogram("sim_query_seconds", "End-to-end Retrieve latency (parse+plan+execute).")
	db.execHist = db.reg.Histogram("sim_update_seconds", "End-to-end update-statement latency, including commit.")
	db.queryErrs = db.reg.Counter("sim_query_errors_total", "Retrieve statements that returned an error.")
	db.slowCount = db.reg.Counter("sim_slow_queries_total", "Queries slower than the configured slow-query threshold.")
	store.RegisterMetrics(db.reg)
	db.plans.registerMetrics(db.reg)
	if err := db.loadSchema(); err != nil {
		store.Close()
		return nil, err
	}
	return db, nil
}

// Close checkpoints and closes the database. It fails if a transaction
// is still open; callers must finish queries and transactions first.
func (db *Database) Close() error {
	return db.store.Close()
}

// loadSchema replays persisted DDL batches and rebuilds the catalog,
// mapper and executor.
func (db *Database) loadSchema() error {
	st, err := db.store.Structure("~schema")
	if err != nil {
		return err
	}
	c, err := st.First()
	if err != nil {
		return err
	}
	var batches []string
	for ; c.Valid(); c.Next() {
		batches = append(batches, string(c.Value()))
	}
	if err := c.Err(); err != nil {
		return err
	}
	return db.rebuild(batches)
}

// rebuild constructs catalog + mapper + executor from DDL batches.
func (db *Database) rebuild(batches []string) error {
	cat := catalog.New()
	for i, ddl := range batches {
		sch, err := parser.ParseSchema(ddl)
		if err != nil {
			return fmt.Errorf("sim: stored schema batch %d: %w", i, err)
		}
		if err := cat.Extend(sch); err != nil {
			return fmt.Errorf("sim: stored schema batch %d: %w", i, err)
		}
	}
	mapper, err := luc.New(db.store, cat, db.cfg.Mapping)
	if err != nil {
		return err
	}
	constraints, err := integrity.Analyze(cat)
	if err != nil {
		return err
	}
	// Validate derived-attribute definitions by probing a binding of each
	// (their expressions are otherwise only checked at first reference).
	for _, cl := range cat.Classes() {
		for _, a := range cl.Attrs {
			if a.Kind != catalog.Derived || a.Owner != cl {
				continue
			}
			probe := &ast.Path{Steps: []ast.PathStep{{Name: a.Name}, {Name: cl.Name}}}
			if _, err := query.BindScalar(cat, cl, probe); err != nil {
				return fmt.Errorf("derived attribute %s: %w", a, err)
			}
		}
	}
	exe := exec.New(mapper)
	exe.SetConstraints(constraints)
	exe.SetWorkers(db.cfg.queryWorkers())
	exe.SetTreeWalk(db.cfg.TreeWalkEval)
	// Owned counters come back identical across rebuilds (totals keep
	// accumulating); the mapper's func-backed readers are re-pointed at the
	// fresh instance.
	exe.SetMetrics(db.reg)
	mapper.RegisterMetrics(db.reg)
	db.ddl = batches
	db.cat = cat
	db.mapper = mapper
	db.exe = exe
	// Every cached plan points into the old catalog and mapper.
	db.plans.clear()
	return nil
}

// DefineSchema parses and applies a DDL text (Type/Class/Subclass/Verify
// declarations). The schema may be extended incrementally across calls;
// each batch is validated against everything defined before it and
// persisted with the database.
func (db *Database) DefineSchema(ddl string) error {
	// Take the substrate write latch before db.mu (the store-wide lock
	// order), waiting out any transaction in its write phase.
	tx, err := db.store.Begin()
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	batches := append(append([]string(nil), db.ddl...), ddl)
	prev := struct {
		cat *catalog.Catalog
		m   *luc.Mapper
		e   *exec.Executor
	}{db.cat, db.mapper, db.exe}
	if err := db.rebuild(batches); err != nil {
		db.revertSchema(prev.cat, prev.m, prev.e, batches)
		tx.Rollback()
		return err
	}
	// Persist the batch.
	st, err := db.store.Structure("~schema")
	if err != nil {
		tx.Rollback()
		return err
	}
	key := fmt.Sprintf("%08d", len(db.ddl)-1)
	if err := st.Put([]byte(key), []byte(ddl)); err != nil {
		tx.Rollback()
		db.revertSchema(prev.cat, prev.m, prev.e, batches)
		return err
	}
	if err := tx.Commit(); err != nil {
		// The batch never became durable (e.g. a poisoned WAL). Revert the
		// in-memory schema too, or this database would answer queries
		// against classes that vanish on reopen.
		db.revertSchema(prev.cat, prev.m, prev.e, batches)
		return err
	}
	if db.schemaHook != nil {
		// The batch's page images are already published (the commit hook ran
		// inside tx.Commit), so followers see the marker after the pages.
		db.schemaHook(uint64(len(db.ddl)))
	}
	return nil
}

// revertSchema restores the pre-DefineSchema engine state after a failed
// validation or persist.
func (db *Database) revertSchema(cat *catalog.Catalog, m *luc.Mapper, e *exec.Executor, batches []string) {
	db.cat, db.mapper, db.exe = cat, m, e
	db.ddl = batches[:len(batches)-1]
	db.plans.clear()
}

// Catalog exposes the schema catalog for introspection.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Mapper exposes the LUC Mapper (advanced use: statistics, direct scans).
func (db *Database) Mapper() *luc.Mapper { return db.mapper }

// Stats returns engine counters. It is safe to call while queries run.
func (db *Database) Stats() Stats {
	db.mu.RLock()
	mapper, reg := db.mapper, db.reg
	db.mu.RUnlock()
	return Stats{
		Pool:  db.store.Stats(),
		Plans: db.plans.stats(),
		Cache: mapper.CacheStats(),
		WAL:   db.store.WALStats(),
		Exec: ExecStats{
			Queries:   uint64(reg.Get("sim_exec_queries_total")),
			Parallel:  uint64(reg.Get("sim_exec_parallel_queries_total")),
			Instances: uint64(reg.Get("sim_exec_instances_total")),
			Rows:      uint64(reg.Get("sim_exec_rows_total")),
			Updates:   uint64(reg.Get("sim_exec_updates_total")),
			Entities:  uint64(reg.Get("sim_exec_entities_updated_total")),
		},
	}
}

// ResetStats zeroes the activity counters, for benchmark phase
// boundaries: buffer pool hits/misses/writes, plan cache hits/misses
// (cached plans stay), the LUC record-cache hit/miss counters, every
// registry-owned counter and histogram (executor totals, query/update
// latency, latch wait histograms), and every component that registered an
// OnReset hook with the registry — latch contention counters and the
// replication publisher/follower activity totals (groups published and
// applied, snapshots, evictions, reconnects, staleness). WAL totals, the
// page-count gauge, replication positions/lag gauges and the slow-query
// log are cumulative and survive a reset.
func (db *Database) ResetStats() {
	db.mu.RLock()
	mapper := db.mapper
	db.mu.RUnlock()
	db.store.ResetStats()
	db.plans.resetStats()
	mapper.ResetCacheStats()
	db.reg.ResetCounters()
}

// Query is QueryCtx(context.Background(), dml).
func (db *Database) Query(dml string) (*Result, error) {
	return db.QueryCtx(context.Background(), dml)
}

// QueryCtx executes one Retrieve statement and returns its result.
// Repeated statements hit the plan cache and skip parse/bind/optimize;
// the cache is invalidated whenever the schema changes. Cancellation or
// deadline expiry is observed between rows of the outermost range, so
// long scans stop promptly. The network server uses this for per-request
// deadlines.
func (db *Database) QueryCtx(ctx context.Context, dml string) (*Result, error) {
	start := time.Now()
	res, err := db.queryCtx(ctx, dml)
	d := time.Since(start)
	db.queryHist.Observe(d)
	if err != nil {
		db.queryErrs.Inc()
		return nil, err
	}
	if db.slow.Observe(dml, d, res.Stats.Rows, obs.RequestID(ctx)) {
		db.slowCount.Inc()
	}
	return res, nil
}

func (db *Database) queryCtx(ctx context.Context, dml string) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	// Pin the latest committed version stamp for the statement: the query
	// traverses page versions as of this stamp, never blocking on — or
	// being torn by — a concurrent transaction's write phase.
	snap := db.store.PinSnapshot()
	defer snap.Release()
	return db.queryOn(ctx, dml, db.exe.View(db.mapper.View(snap)), nil)
}

// queryOn parses, plans and executes one Retrieve statement on the given
// executor — a pinned-snapshot view, a transaction's read view, or the
// live executor. The plan cache is shared across views: compiled
// programs read all data through the running executor's mapper, so one
// cached program serves every snapshot. When tr is non-nil the parse,
// plan and execute spans are recorded and execution is traced. The
// caller holds db.mu (read suffices).
func (db *Database) queryOn(ctx context.Context, dml string, exe *exec.Executor, tr *obs.QueryTrace) (*Result, error) {
	p, prog, ok := db.plans.get(dml)
	if !ok {
		parseStart := time.Now()
		stmt, err := parser.ParseStmt(dml)
		if err != nil {
			return nil, err
		}
		ret, isRet := stmt.(*ast.RetrieveStmt)
		if !isRet {
			return nil, fmt.Errorf("sim: Query wants a Retrieve statement; use Exec for updates")
		}
		if tr != nil {
			tr.Parse = time.Since(parseStart)
		}
		planStart := time.Now()
		p, err = db.planRetrieveOn(ret, exe.Mapper())
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Plan = time.Since(planStart)
		}
		prog = db.compilePlan(p)
		db.plans.put(dml, p, prog)
	} else if tr != nil {
		tr.PlanCached = true
	}
	if tr == nil {
		return exe.RetrieveProgram(ctx, p, prog, nil)
	}
	tr.PlanDesc = p.Explain()
	execStart := time.Now()
	res, err := exe.RetrieveProgram(ctx, p, prog, tr)
	tr.Exec = time.Since(execStart)
	return res, err
}

// compilePlan lowers an optimized plan to a closure program for caching
// next to it. A nil result (tree walker forced, or a construct the
// compiler declines) routes execution through the reference walker.
func (db *Database) compilePlan(p *plan.Plan) *exec.Program {
	if db.cfg.TreeWalkEval {
		return nil
	}
	prog, err := db.exe.Compile(p)
	if err != nil {
		return nil
	}
	return prog
}

// planRetrieveOn binds and optimizes a parsed Retrieve under the read
// lock, reading optimizer statistics through the given mapper — a
// snapshot view when the caller reads a snapshot, so planning never
// touches live pages concurrently with a writer.
func (db *Database) planRetrieveOn(ret *ast.RetrieveStmt, m *luc.Mapper) (*plan.Plan, error) {
	tree, err := query.Bind(db.cat, ret)
	if err != nil {
		return nil, err
	}
	return plan.Optimize(tree, m)
}

// runRetrieveOn plans and tree-walks one Retrieve on the given executor,
// bypassing the plan cache (the script path; see RunCtx).
func (db *Database) runRetrieveOn(ctx context.Context, ret *ast.RetrieveStmt, exe *exec.Executor) (*Result, error) {
	p, err := db.planRetrieveOn(ret, exe.Mapper())
	if err != nil {
		return nil, err
	}
	return exe.RetrieveCtx(ctx, p)
}

// Explain is ExplainCtx(context.Background(), dml).
func (db *Database) Explain(dml string) (string, error) {
	return db.ExplainCtx(context.Background(), dml)
}

// ExplainCtx returns the optimizer's chosen strategy for a Retrieve
// statement without executing it.
func (db *Database) ExplainCtx(ctx context.Context, dml string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	stmt, err := parser.ParseStmt(dml)
	if err != nil {
		return "", err
	}
	ret, ok := stmt.(*ast.RetrieveStmt)
	if !ok {
		return "", fmt.Errorf("sim: Explain wants a Retrieve statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := db.store.PinSnapshot()
	defer snap.Release()
	p, err := db.planRetrieveOn(ret, db.mapper.View(snap))
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Exec is ExecCtx(context.Background(), dml).
func (db *Database) Exec(dml string) (int, error) {
	return db.ExecCtx(context.Background(), dml)
}

// ExecCtx executes one update statement (Insert, Modify or Delete) as its
// own transaction and returns the number of affected entities. It is a
// one-statement transaction over the same machinery as Database.Begin —
// on any error the statement's effects are rolled back, and concurrent
// callers' commits share WAL fsyncs (group commit). Cancellation is
// observed between the entities an update selects; a cancelled statement
// rolls back like any other failed statement.
func (db *Database) ExecCtx(ctx context.Context, dml string) (int, error) {
	start := time.Now()
	stmt, err := parser.ParseStmt(dml)
	if err != nil {
		return 0, err
	}
	n, err := db.execOne(ctx, stmt)
	db.execHist.Observe(time.Since(start))
	return n, err
}

// execOne runs one parsed update statement as its own transaction. The
// autocommit flag skips the snapshot pin and the per-entity latches: the
// statement executes and commits without ever being open-idle, so it
// queues behind other writers instead of raising first-writer-wins
// conflicts.
func (db *Database) execOne(ctx context.Context, stmt ast.Stmt) (int, error) {
	tx, err := db.begin(ctx, true)
	if err != nil {
		return 0, err
	}
	n, err := tx.execStmt(ctx, stmt)
	if err != nil {
		tx.Rollback()
		return 0, err
	}
	return n, tx.Commit()
}

// Run is RunCtx(context.Background(), script).
func (db *Database) Run(script string) ([]*Result, error) {
	return db.RunCtx(context.Background(), script)
}

// RunCtx executes a script of statements separated by '.' or ';'.
// Retrieve results are returned in order; updates and transaction-control
// statements contribute nil entries.
//
// By default each update statement is its own transaction, so when a
// statement fails the effects of the earlier statements persist — the
// error names the failed statement by its 1-based index, and everything
// before it has already committed. A script may instead group statements
// with BEGIN ... COMMIT (or ROLLBACK): inside such a block nothing
// persists unless the COMMIT executes, and a transaction still open when
// the script ends (normally or on error) is rolled back.
func (db *Database) RunCtx(ctx context.Context, script string) ([]*Result, error) {
	stmts, err := parser.ParseStmts(script)
	if err != nil {
		return nil, err
	}
	var out []*Result
	var tx *Tx
	defer func() {
		if tx != nil {
			tx.Rollback() // transaction left open at script end
		}
	}()
	for i, s := range stmts {
		fail := func(err error) ([]*Result, error) {
			return out, fmt.Errorf("statement %d: %w", i+1, err)
		}
		switch s := s.(type) {
		case *ast.BeginStmt:
			if tx != nil {
				return fail(fmt.Errorf("sim: BEGIN inside an open transaction"))
			}
			t, err := db.Begin(ctx)
			if err != nil {
				return fail(err)
			}
			tx = t
			out = append(out, nil)
		case *ast.CommitStmt:
			if tx == nil {
				return fail(fmt.Errorf("sim: COMMIT outside a transaction"))
			}
			err := tx.Commit()
			tx = nil
			if err != nil {
				return fail(err)
			}
			out = append(out, nil)
		case *ast.RollbackStmt:
			if tx == nil {
				return fail(fmt.Errorf("sim: ROLLBACK outside a transaction"))
			}
			err := tx.Rollback()
			tx = nil
			if err != nil {
				return fail(err)
			}
			out = append(out, nil)
		case *ast.RetrieveStmt:
			db.mu.RLock()
			var r *Result
			var err error
			if tx != nil {
				// Inside a BEGIN block the Retrieve reads the transaction's
				// view: the Begin-time snapshot, or — once the block wrote —
				// its own uncommitted writes.
				r, err = db.runRetrieveOn(ctx, s, tx.readViewLocked())
			} else {
				snap := db.store.PinSnapshot()
				r, err = db.runRetrieveOn(ctx, s, db.exe.View(db.mapper.View(snap)))
				snap.Release()
			}
			db.mu.RUnlock()
			if err != nil {
				return fail(err)
			}
			out = append(out, r)
		default:
			if tx != nil {
				if _, err := tx.execStmt(ctx, s); err != nil {
					return fail(err)
				}
			} else if _, err := db.execOne(ctx, s); err != nil {
				return fail(err)
			}
			out = append(out, nil)
		}
	}
	return out, nil
}

// CheckIntegrity re-verifies every VERIFY assertion against every entity
// of its class, reporting the first violation.
func (db *Database) CheckIntegrity() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := db.store.PinSnapshot()
	defer snap.Release()
	exe := db.exe.View(db.mapper.View(snap))
	constraints, err := integrity.Analyze(db.cat)
	if err != nil {
		return err
	}
	for _, c := range constraints {
		if err := exe.CheckAll(c); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint flushes committed data to the database file and truncates the
// write-ahead log. It takes the substrate's write latch itself (waiting
// out any transaction in its write phase); queries keep running.
func (db *Database) Checkpoint() error {
	return db.store.Checkpoint()
}

// ScrubReport is the result of a physical + logical storage audit; see
// Database.Scrub.
type ScrubReport = dmsii.ScrubReport

// Scrub audits the database's storage: it checkpoints, re-reads every
// page of the database file verifying its CRC32 trailer, and
// cursor-scans every structure end to end. Corruption is reported with
// the damaged page ids, never silently served or repaired. Scrub
// requires a write-quiescent database: it fails if a transaction is open,
// and callers must not run updates concurrently with the audit.
func (db *Database) Scrub() (ScrubReport, error) {
	rep, err := db.store.Scrub()
	if err != nil || !rep.OK() {
		// A failed audit is exactly the incident the flight recorder exists
		// for: record it so the auto-dump (simdb \verify, crash matrix)
		// carries the recent history alongside the failure.
		note := ""
		if err != nil {
			note = err.Error()
		} else if len(rep.Errors) > 0 {
			note = rep.Errors[0]
		}
		db.reg.Flight().Component("store").Event("store", "scrub-fail", 0, 0, int64(len(rep.Corrupt)), note)
	}
	return rep, err
}

// SchemaSummary renders a one-line-per-class summary of the schema, with
// the counts the paper reports for ADDS (§6): base classes, subclasses,
// EVA-inverse pairs, DVAs and maximum generalization depth.
func (db *Database) SchemaSummary() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var base, subs, dvas, pairs int
	maxDepth := 0
	seenPair := map[*catalog.Attribute]bool{}
	var depth func(c *catalog.Class) int
	depth = func(c *catalog.Class) int {
		d := 0
		for _, s := range c.Supers {
			if dd := depth(s) + 1; dd > d {
				d = dd
			}
		}
		return d
	}
	for _, cl := range db.cat.Classes() {
		if cl.IsBase() {
			base++
		} else {
			subs++
		}
		if d := depth(cl); d > maxDepth {
			maxDepth = d
		}
		for _, a := range cl.Attrs {
			switch a.Kind {
			case catalog.DVA:
				dvas++
			case catalog.EVA:
				if !a.Implicit && !seenPair[a] {
					seenPair[a] = true
					if a.Inverse != nil {
						seenPair[a.Inverse] = true
					}
					pairs++
				}
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "base classes: %d\nsubclasses: %d\nEVA-inverse pairs: %d\nDVAs: %d\nmax generalization depth: %d\n", base, subs, pairs, dvas, maxDepth)
	return b.String()
}
