package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// QueryCtx/ExecCtx honour cancellation: a context cancelled before the
// executor's outer loop starts surfaces ctx.Err() instead of a result.

func TestQueryCtxCancelled(t *testing.T) {
	db := universityDB(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryCtx(ctx, `From Student Retrieve Name, Name of Advisor.`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: err %v, want context.Canceled", err)
	}
	// The database is unaffected: the same query works afterwards.
	if _, err := db.Query(`From Student Retrieve Name.`); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

func TestExecCtxCancelled(t *testing.T) {
	db := universityDB(t, Config{})
	before := mustQuery(t, db, `From Student Retrieve Name.`).NumRows()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecCtx(ctx, `Modify Student (Name := "Gone") Where Student-Nbr >= 1001.`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled exec: err %v, want context.Canceled", err)
	}
	// The cancelled update rolled back: nothing was renamed.
	r := mustQuery(t, db, `From Student Retrieve Name Where Name = "Gone".`)
	if r.NumRows() != 0 {
		t.Fatalf("cancelled Modify left %d renamed students", r.NumRows())
	}
	if got := mustQuery(t, db, `From Student Retrieve Name.`).NumRows(); got != before {
		t.Fatalf("student count changed across cancelled exec: %d -> %d", before, got)
	}
}

func TestQueryCtxNilSafe(t *testing.T) {
	db := universityDB(t, Config{})
	// A background (non-cancellable) context takes the fast path.
	r, err := db.QueryCtx(context.Background(), `From Student Retrieve Name.`)
	if err != nil || r.NumRows() == 0 {
		t.Fatalf("background ctx query: rows=%v err=%v", r, err)
	}
}

// Run error paths (the -e script engine is built on the same semantics):
// a parse error anywhere aborts the whole script before anything runs; a
// runtime error at statement N returns the first N-1 results and leaves
// the effects of statements 1..N-1 in place (per-statement transactions).

func TestRunMidScriptParseError(t *testing.T) {
	db := universityDB(t, Config{})
	before := mustQuery(t, db, `From Course Retrieve Title.`).NumRows()
	results, err := db.Run(`
		Insert Course (Course-No := 900, Title := "Scripting", Credits := 3).
		From Course Retrieve garbage garbage;
	`)
	if err == nil {
		t.Fatal("script with a parse error succeeded")
	}
	if results != nil {
		t.Fatalf("parse error returned %d results, want none", len(results))
	}
	// Parsing happens before execution: the Insert never ran.
	if got := mustQuery(t, db, `From Course Retrieve Title.`).NumRows(); got != before {
		t.Fatalf("parse-failing script still executed statements: %d -> %d courses", before, got)
	}
}

func TestRunRuntimeErrorKeepsPrefix(t *testing.T) {
	db := universityDB(t, Config{})
	results, err := db.Run(`
		Insert Course (Course-No := 901, Title := "Persisted", Credits := 3).
		From Course Retrieve Title Where Course-No = 901.
		Insert Course (Course-No := 901, Title := "Duplicate", Credits := 3).
		From Course Retrieve Title.
	`)
	if err == nil {
		t.Fatal("duplicate unique key accepted")
	}
	if !strings.Contains(err.Error(), "statement 3") {
		t.Fatalf("error %q does not name the failing statement", err)
	}
	// The prefix ran: one nil (insert) and one retrieve result.
	if len(results) != 2 || results[0] != nil || results[1] == nil {
		t.Fatalf("results = %v, want [nil, retrieve]", results)
	}
	expectRows(t, results[1], [][]string{{"Persisted"}})
	// Statement 1 committed (per-statement transactions), statement 3
	// rolled back.
	r := mustQuery(t, db, `From Course Retrieve Title Where Course-No = 901.`)
	expectRows(t, r, [][]string{{"Persisted"}})
}
