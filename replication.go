package sim

import (
	"sim/internal/dmsii"
	"sim/internal/pager"
	"sim/internal/wal"
)

// This file is the database-level replication surface consumed by
// internal/repl: the primary side publishes committed page groups and
// base images, the follower side installs them. The repl package cannot
// be imported from here (it imports sim), so the coupling is one-way —
// sim exposes hooks, repl drives them.

// OpenStore assembles a Database over an already-open substrate store.
// The replication and fault-injection harnesses use it to run real
// databases over scripted or follower-owned storage; Open is the
// production path. The store is closed on error.
func OpenStore(store *dmsii.Store, cfg Config) (*Database, error) {
	return openStore(store, cfg)
}

// SetCommitHook installs fn to observe every committed page group —
// deduplicated page images in commit order plus the request IDs that rode
// the group, delivered after the group's fsync. The image bytes alias
// commit-internal buffers; fn must copy what it keeps. fn returns the
// replication position the group published at, which flows back into the
// committers' CommitTraces. Errors for in-memory databases (no WAL to
// ship).
func (db *Database) SetCommitHook(fn func(wal.CommitGroup) uint64) error {
	return db.store.SetCommitHook(fn)
}

// SetSchemaHook installs fn to be called with the new schema generation
// after every successful DefineSchema. The publisher uses it to tell
// followers to reload their catalogs.
func (db *Database) SetSchemaHook(fn func(gen uint64)) {
	db.mu.Lock()
	db.schemaHook = fn
	db.mu.Unlock()
}

// SchemaGen returns the schema generation: the number of DDL batches
// defined so far. A follower compares generations across replicated
// groups to decide when a catalog reload is needed.
func (db *Database) SchemaGen() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return uint64(len(db.ddl))
}

// ReplSnapshot returns a point-in-time image of the whole database file
// plus the publisher position it is current as of (pos is read while the
// store's write latch is held, so no commit can slip between the copy
// and the position).
func (db *Database) ReplSnapshot(pos func() uint64) ([]byte, uint64, error) {
	return db.store.SnapshotImage(pos)
}

// ApplyReplicated applies one committed page group shipped from a
// primary. It takes the statement lock exclusively, so no query observes
// a half-applied group. When reloadSchema is set (the group carried a
// schema-generation change) the catalog, mapper and executor are rebuilt
// from the replicated "~schema" structure; otherwise only the mapper's
// record caches are reset — compiled plans survive, since the schema
// they were compiled against is unchanged.
func (db *Database) ApplyReplicated(pages []pager.PageImage, reloadSchema bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(pages) > 0 {
		if err := db.store.ApplyReplicated(pages); err != nil {
			return err
		}
	}
	if reloadSchema {
		return db.loadSchema()
	}
	db.mapper.ResetCaches()
	return nil
}

// ApplySnapshot atomically replaces the database with a base image
// shipped from a primary and reloads the schema from it.
func (db *Database) ApplySnapshot(img []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.store.ReplaceImage(img); err != nil {
		return err
	}
	return db.loadSchema()
}
