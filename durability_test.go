package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sim/internal/university"
)

// Full-stack crash consistency: commit through the public API, "crash"
// without Close (no checkpoint), reopen, and verify both schema and data
// recovered from the WAL.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.sim")
	db, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineSchema(university.DDL); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `Insert department (dept-nbr := 100, name := "Physics").`)
	mustExec(t, db, `Insert instructor (name := "Prof", soc-sec-no := 1, employee-nbr := 1001,
	   assigned-department := department with (name = "Physics")).`)
	// Crash: abandon without Close. The WAL must carry the committed state.
	if fi, err := os.Stat(path + ".wal"); err != nil || fi.Size() == 0 {
		t.Fatalf("wal empty before simulated crash: %v", err)
	}

	db2, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := mustQuery(t, db2, `From instructor Retrieve name, name of assigned-department.`)
	expectRows(t, r, [][]string{{"Prof", "Physics"}})
	// Still fully writable, with surrogates continuing.
	mustExec(t, db2, `Insert instructor (name := "Prof2", soc-sec-no := 2, employee-nbr := 1002).`)
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// A rolled-back statement must not reach the file even across reopen.
func TestFailedStatementInvisibleAfterReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rb.sim")
	db, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineSchema(university.DDL); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `Insert person (name := "Keeper", soc-sec-no := 7).`)
	if _, err := db.Exec(`Insert person (name := "Dup", soc-sec-no := 7).`); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := mustQuery(t, db2, `From person Retrieve name.`)
	expectRows(t, r, [][]string{{"Keeper"}})
}

// Explicit checkpoint truncates the WAL and the database stays consistent.
func TestCheckpointThroughAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.sim")
	db, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(`Class Box ( label: string[10] );`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf(`Insert box (label := "b%02d").`, i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path + ".wal")
	if err != nil || fi.Size() != 0 {
		t.Fatalf("wal after checkpoint: %v %d", err, fi.Size())
	}
	r := mustQuery(t, db, `From box Retrieve Table Distinct count(label of box).`)
	expectRows(t, r, [][]string{{"50"}})
}

// Many transactions across many reopens: surrogate continuity and stats.
func TestRepeatedReopenSoak(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "soak.sim")
	total := 0
	for round := 0; round < 5; round++ {
		db, err := Open(path, Config{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round == 0 {
			if err := db.DefineSchema(`Class Item ( n: integer unique required );`); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			mustExec(t, db, fmt.Sprintf(`Insert item (n := %d).`, round*100+i))
			total++
		}
		r := mustQuery(t, db, `From item Retrieve Table Distinct count(n of item).`)
		if got := r.Rows()[0][0].String(); got != fmt.Sprint(total) {
			t.Fatalf("round %d: count = %s, want %d", round, got, total)
		}
		if round%2 == 0 {
			db.Close() // clean close (checkpoint)
		} // odd rounds: crash (recovery path)
	}
}

func TestOpenRejectsGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage")
	if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Config{}); err == nil {
		t.Error("garbage file opened as a database")
	}
}

// Mapper API smoke coverage: Roles.
func TestMapperRolesAPI(t *testing.T) {
	db := universityDB(t, Config{})
	m := db.Mapper()
	cat := db.Catalog()
	ss, err := m.Surrogates(cat.Class("teaching-assistant"))
	if err != nil || len(ss) != 1 {
		t.Fatalf("TA scan: %v %v", ss, err)
	}
	roles, err := m.Roles(cat.Class("person"), ss[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(roles) != 4 { // person, student, instructor, teaching-assistant
		t.Errorf("Tina's roles = %v", roles)
	}
}

// Bare boolean attribute as a selection condition.
func TestBareBooleanCondition(t *testing.T) {
	db, err := Open("", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(`Class Flag ( fname: string[10]; active: boolean );`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `Insert flag (fname := "yes", active := true).`)
	mustExec(t, db, `Insert flag (fname := "no", active := false).`)
	r := mustQuery(t, db, `From flag Retrieve fname Where active.`)
	expectRows(t, r, [][]string{{"yes"}})
}
