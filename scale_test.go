package sim_test

import (
	"fmt"
	"strings"
	"testing"

	"sim"
	"sim/internal/bench"
	"sim/internal/luc"
	"sim/internal/value"
)

func xQuery(t *testing.T, db *sim.Database, q string) *sim.Result {
	t.Helper()
	r, err := db.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return r
}

func xExec(t *testing.T, db *sim.Database, s string) int {
	t.Helper()
	n, err := db.Exec(s)
	if err != nil {
		t.Fatalf("Exec(%q): %v", s, err)
	}
	return n
}

func xSingle(t *testing.T, db *sim.Database, q string) value.Value {
	t.Helper()
	r := xQuery(t, db, q)
	if r.NumRows() != 1 || len(r.Rows()[0]) != 1 {
		t.Fatalf("Query(%q) did not return a single value", q)
	}
	return r.Rows()[0][0]
}

// A larger population through the full stack: load, query under the
// optimizer, mutate, and verify global integrity. Skipped with -short.
func TestScaleWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	w := bench.Workload{
		Departments: 8,
		Instructors: 80,
		Students:    1500,
		Courses:     150,
		EnrollPer:   3,
		AdvisePer:   10,
	}
	db, err := bench.BuildUniversity(sim.Config{Mapping: luc.Config{Indexes: []string{"person.name", "course.title"}}}, w)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Cardinalities.
	if v := xSingle(t, db, `From student Retrieve Table Distinct count(soc-sec-no of student).`); v.String() != "1500" {
		t.Fatalf("students = %s", v)
	}
	if v := xSingle(t, db, `From course Retrieve Table Distinct count(course-no of course).`); v.String() != "150" {
		t.Fatalf("courses = %s", v)
	}
	// Enrollment instances: 1500 × 3 (the mapper's maintained statistic).
	enrolledAttr := db.Catalog().Class("student").Attr("courses-enrolled")
	if n, err := db.Mapper().RelCount(enrolledAttr); err != nil || n != 4500 {
		t.Fatalf("enrollment instances = %d, %v", n, err)
	}

	// Optimizer point queries stay fast and correct at scale.
	r := xQuery(t, db, `From person Retrieve name Where soc-sec-no = 200000777.`)
	if r.NumRows() != 1 || r.Rows()[0][0].String() != "Student 00777" {
		t.Errorf("point query = %v", r.Rows())
	}
	ex, err := db.Explain(`From student Retrieve soc-sec-no Where name of advisor = "Instructor 0007".`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "pivot") {
		t.Errorf("explain = %q, want pivot", ex)
	}
	r = xQuery(t, db, `From student Retrieve soc-sec-no Where name of advisor = "Instructor 0007".`)
	if r.NumRows() != 10 {
		t.Errorf("advisees found = %d, want 10", r.NumRows())
	}

	// A broad mutation with verify enforcement.
	n := xExec(t, db, `Modify instructor (salary := salary + 500) Where salary < 30040.`)
	if n != 40 {
		t.Errorf("raised %d instructors, want 40", n)
	}
	// Global integrity still holds.
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Bulk delete cascades cleanly.
	n = xExec(t, db, `Delete student Where soc-sec-no >= 200001400.`)
	if n != 100 {
		t.Errorf("deleted %d students, want 100", n)
	}
	if n, err := db.Mapper().RelCount(enrolledAttr); err != nil || n != 4200 {
		t.Errorf("instances after delete = %d, %v; want 4200", n, err)
	}
}

// Oversized index keys fail cleanly and atomically.
func TestOversizedIndexKeyRollsBack(t *testing.T) {
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(`Class Doc ( body: string unique );`); err != nil {
		t.Fatal(err)
	}
	long := make([]byte, 600)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := db.Exec(fmt.Sprintf(`Insert doc (body := %q).`, long)); err == nil {
		t.Fatal("oversized unique value accepted")
	}
	r := xQuery(t, db, `From doc Retrieve body.`)
	if r.NumRows() != 0 {
		t.Error("failed insert left a row")
	}
	xExec(t, db, `Insert doc (body := "short").`)
}
